#include "serve/replay.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "serve/checkpoint.h"
#include "serve/recovery.h"
#include "serve/sharded_server.h"
#include "serve/wal.h"

namespace tbf {

namespace {

// One epoch's worth of dispatch work for a single event, pre-resolved to
// the obfuscated report and its home lane.
struct PreparedEvent {
  const TimedEvent* event = nullptr;
  uint64_t event_index = 0;  // absolute index into EventTrace::events
  int report_index = -1;  // into the epoch's obfuscated batch (arrivals)
  int task_slot = -1;     // into ReplayReport::task_outcomes (tasks)
};

struct LaneStats {
  size_t registered = 0;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;
  size_t shed = 0;
  size_t missed_departures = 0;
};

}  // namespace

Result<ReplayReport> RunEventReplay(const TbfFramework& framework,
                                    const EventTrace& trace,
                                    const ReplayOptions& options) {
  if (options.epoch_seconds <= 0.0) {
    return Status::InvalidArgument("epoch_seconds must be positive");
  }
  const bool durable = !options.durable_dir.empty();
  if ((!options.checkpoint_path.empty() || durable) &&
      options.checkpoint_every_epochs < 1) {
    return Status::InvalidArgument("checkpoint_every_epochs must be >= 1");
  }
  if (options.resume_from_checkpoint && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "resume_from_checkpoint requires checkpoint_path");
  }
  if (durable && !options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "durable_dir and checkpoint_path are mutually exclusive (the "
        "durable directory owns its own ordinal checkpoints)");
  }
  if (durable && options.parallel_dispatch && options.num_shards > 1) {
    return Status::InvalidArgument(
        "durable_dir requires sequential dispatch: the journal is an "
        "ordered log and parallel lane interleaving is not replayable");
  }
  if (durable && options.keep_checkpoints < 1) {
    return Status::InvalidArgument("keep_checkpoints must be >= 1");
  }
  if (options.recover && !durable) {
    return Status::InvalidArgument("recover requires durable_dir");
  }
  for (size_t i = 0; i < options.republishes.size(); ++i) {
    const ReplayRepublish& entry = options.republishes[i];
    if (entry.tree == nullptr) {
      return Status::InvalidArgument(
          "republish schedule entry " + std::to_string(i) +
          ": tree must not be null");
    }
    if (entry.tree->depth() != framework.tree().depth() ||
        entry.tree->arity() != framework.tree().arity()) {
      return Status::InvalidArgument(
          "republish schedule entry " + std::to_string(i) +
          ": tree shape must match the framework tree (live reports are "
          "expressed in the published geometry)");
    }
    if (i > 0 && entry.at_epoch <= options.republishes[i - 1].at_epoch) {
      return Status::InvalidArgument(
          "republish schedule must be strictly increasing in at_epoch "
          "(entry " + std::to_string(i) + ")");
    }
  }

  const size_t n = trace.events.size();
  const bool quarantining = options.poison_policy == PoisonPolicy::kQuarantine;
  // Poison handling. kFail keeps the historical contract (and its exact
  // messages): the first bad event aborts the whole run up front.
  // kQuarantine pre-scans instead: poison events are marked and carry a
  // cause, surviving events behave exactly as if the trace never
  // contained the poison (time ordering is checked across survivors
  // only, and quarantined events consume no obfuscation draws).
  std::vector<uint8_t> poison;
  std::vector<std::string> poison_cause;
  if (!quarantining) {
    for (size_t i = 0; i < n; ++i) {
      if (!std::isfinite(trace.events[i].time)) {
        return Status::InvalidArgument("event times must be finite (event " +
                                       std::to_string(i) + ")");
      }
      if (i > 0 && trace.events[i].time < trace.events[i - 1].time) {
        return Status::InvalidArgument(
            "events must be in nondecreasing time order (event " +
            std::to_string(i) + ")");
      }
    }
  } else {
    poison.assign(n, 0);
    poison_cause.resize(n);
    double last_time = 0.0;
    bool have_last = false;
    for (size_t i = 0; i < n; ++i) {
      const TimedEvent& event = trace.events[i];
      std::string cause;
      if (!std::isfinite(event.time)) {
        cause = "non-finite event time";
      } else if (have_last && event.time < last_time) {
        cause = "event time regressed below preceding surviving event";
      } else if (event.id.empty()) {
        cause = "empty event id";
      } else if (event.kind != EventKind::kWorkerDeparture &&
                 (!std::isfinite(event.location.x) ||
                  !std::isfinite(event.location.y))) {
        cause = "non-finite location coordinates";
      }
      if (!cause.empty()) {
        poison[i] = 1;
        poison_cause[i] = std::move(cause);
      } else {
        last_time = event.time;
        have_last = true;
      }
    }
  }

  // Each run instruments a private registry: interval deltas, latency
  // percentiles and per-shard counters then describe exactly this run,
  // isolated from the process-wide registry and concurrent replays.
  // Declared before the server so every engine handle stays valid for
  // the server's whole lifetime.
  obs::MetricRegistry run_metrics;
  obs::Histogram* obfuscate_hist =
      run_metrics.FindOrCreateHistogram("tbf_replay_obfuscate_latency_ns");
  obs::Counter* quarantined_metric =
      run_metrics.FindOrCreateCounter("tbf_robustness_quarantined_total");
  obs::Counter* checkpoint_metric =
      run_metrics.FindOrCreateCounter("tbf_robustness_checkpoints_total");

  ShardedServerOptions server_options;
  server_options.num_shards = options.num_shards;
  server_options.lifetime_budget = options.lifetime_budget;
  server_options.epoch_budget = options.epoch_budget;
  server_options.tie_break = options.tie_break;
  server_options.seed = options.server_seed;
  server_options.max_backlog_per_shard = options.max_backlog_per_shard;
  server_options.degrade_fanout_inflight_threshold =
      options.degrade_fanout_inflight_threshold;
  server_options.metrics = &run_metrics;
  TBF_ASSIGN_OR_RETURN(std::unique_ptr<ShardedTbfServer> server,
                       ShardedTbfServer::Create(framework.tree_ptr(),
                                                server_options));

  const bool budgets_on =
      options.lifetime_budget.has_value() || options.epoch_budget.has_value();
  const std::optional<double> declared_epsilon =
      budgets_on ? std::optional<double>(framework.epsilon()) : std::nullopt;

  ReplayReport report;
  for (const TimedEvent& event : trace.events) {
    switch (event.kind) {
      case EventKind::kWorkerArrival: ++report.worker_arrivals; break;
      case EventKind::kTaskArrival: ++report.task_arrivals; break;
      case EventKind::kWorkerDeparture: ++report.departures; break;
    }
  }
  report.events = n;
  report.task_outcomes.resize(report.task_arrivals);
  if (trace.events.empty() && !options.resume_from_checkpoint && !durable) {
    report.available_workers_end = 0;
    if (options.export_final_state) report.final_state = server->ExportState();
    return report;
  }

  // Epoch of every event, resolved up front: survivors by event time
  // relative to the first survivor, poison events by the window that is
  // open where they sit in the trace (so quarantine lands in a
  // deterministic epoch even for NaN times).
  std::vector<int64_t> event_epoch(n, 0);
  {
    double t0 = 0.0;
    bool have_t0 = false;
    int64_t last_epoch = 0;
    for (size_t i = 0; i < n; ++i) {
      if (quarantining && poison[i]) {
        event_epoch[i] = last_epoch;
        continue;
      }
      if (!have_t0) {
        t0 = trace.events[i].time;
        have_t0 = true;
      }
      last_epoch = static_cast<int64_t>(
          std::floor((trace.events[i].time - t0) / options.epoch_seconds));
      event_epoch[i] = last_epoch;
    }
  }

  const uint32_t trace_fingerprint =
      (options.checkpoint_path.empty() && !durable)
          ? 0
          : FingerprintEventTrace(trace);

  ThreadPool pool(options.threads);
  const Rng obfuscation_stream(options.obfuscation_seed);
  // Packed fast path: obfuscate, route and dispatch entirely on LeafCodes
  // (one uint64 per report, no LeafPath materialized per event). Trees too
  // deep for 64-bit codes degrade to the LeafPath pipeline — same arrivals,
  // same draws, just heavier reports.
  const LeafCodec* codec = framework.codec();
  const bool packed = codec != nullptr;
  if (!packed && options.sampler.has_value() &&
      *options.sampler != SamplerKind::kWalk) {
    return Status::InvalidArgument(
        "ReplayOptions::sampler: non-walk samplers require a tree shape "
        "that fits packed codes");
  }
  uint64_t arrivals_obfuscated = 0;  // global ForkAt offset
  int next_task_slot = 0;
  size_t begin = 0;
  size_t next_republish = 0;  // cursor into options.republishes

  // Restores a parsed checkpoint into the fresh engine + loop cursor;
  // shared by single-file resume and the durable recovery supervisor.
  const auto restore_from_checkpoint = [&](ReplayCheckpoint& ckpt) -> Status {
    if (ckpt.trace_fingerprint != trace_fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint does not belong to this trace (fingerprint mismatch)");
    }
    if (ckpt.num_shards != options.num_shards ||
        ckpt.epoch_seconds != options.epoch_seconds ||
        ckpt.server_seed != options.server_seed ||
        ckpt.obfuscation_seed != options.obfuscation_seed) {
      return Status::FailedPrecondition(
          "checkpoint configuration mismatch (shards, epoch length or "
          "seeds differ from the checkpointed run)");
    }
    if (ckpt.next_event > n || ckpt.next_task_slot < 0) {
      return Status::InvalidArgument(
          "checkpoint cursor out of range for this trace");
    }
    // Fast-forward the fresh engine through the prefix of the republish
    // schedule the checkpointed run had already applied: RestoreState
    // requires the engine to sit at the checkpoint's tree epoch (worker
    // codes in the state are expressed in that tree). fast_forward skips
    // the tbf_republish_* counters (the checkpoint's metric snapshot
    // already contains them) and the republish fault sites (this is
    // state reconstruction, not new work).
    if (ckpt.server.tree_epoch > options.republishes.size()) {
      return Status::FailedPrecondition(
          "checkpoint tree epoch " + std::to_string(ckpt.server.tree_epoch) +
          " exceeds the republish schedule (" +
          std::to_string(options.republishes.size()) +
          " entries) — resumed with a different schedule?");
    }
    for (size_t i = 0; i < ckpt.server.tree_epoch; ++i) {
      RepublishOptions fast_forward;
      fast_forward.fast_forward = true;
      Result<RepublishReport> republished =
          server->Republish(options.republishes[i].tree, fast_forward);
      if (!republished.ok()) return republished.status();
    }
    next_republish = static_cast<size_t>(ckpt.server.tree_epoch);
    report.republishes = ckpt.server.tree_epoch;
    // Engine state first, then the metrics snapshot: Merge must see the
    // engine's metric kinds already registered.
    TBF_RETURN_NOT_OK(server->RestoreState(ckpt.server));
    run_metrics.Merge(ckpt.metrics);
    report.registered = static_cast<size_t>(ckpt.report.registered);
    report.assigned = static_cast<size_t>(ckpt.report.assigned);
    report.unassigned = static_cast<size_t>(ckpt.report.unassigned);
    report.denied = static_cast<size_t>(ckpt.report.denied);
    report.shed = static_cast<size_t>(ckpt.report.shed);
    report.quarantined = static_cast<size_t>(ckpt.report.quarantined);
    report.missed_departures =
        static_cast<size_t>(ckpt.report.missed_departures);
    report.processed_events =
        static_cast<size_t>(ckpt.report.processed_events);
    report.faults_dropped = ckpt.report.faults_dropped;
    report.faults_duplicated = ckpt.report.faults_duplicated;
    report.faults_reordered = ckpt.report.faults_reordered;
    report.faults_stalled = ckpt.report.faults_stalled;
    // checkpoints_written counts only this run's writes — not restored.
    report.per_epoch = std::move(ckpt.per_epoch);
    report.quarantined_events = std::move(ckpt.quarantined_events);
    if (ckpt.task_outcomes.size() > report.task_outcomes.size()) {
      report.task_outcomes.resize(ckpt.task_outcomes.size());
    }
    for (size_t i = 0; i < ckpt.task_outcomes.size(); ++i) {
      report.task_outcomes[i] = std::move(ckpt.task_outcomes[i]);
    }
    begin = static_cast<size_t>(ckpt.next_event);
    arrivals_obfuscated = ckpt.arrivals_obfuscated;
    next_task_slot = static_cast<int>(ckpt.next_task_slot);
    report.resumed = true;
    return Status::OK();
  };

  if (options.resume_from_checkpoint) {
    TBF_ASSIGN_OR_RETURN(ReplayCheckpoint ckpt,
                         ReadReplayCheckpointFile(options.checkpoint_path));
    TBF_RETURN_NOT_OK(restore_from_checkpoint(ckpt));
  }

  // Durable serving: recover the directory (newest valid checkpoint +
  // journal-suffix re-apply), then open the journal for appending.
  std::unique_ptr<WalWriter> wal;
  std::vector<RecoveredWindow> resume_windows;
  size_t resume_window_idx = 0;
  std::vector<RetainedCheckpoint> retained;  // valid ckpts, ordinal order
  if (durable) {
    WalIdentity wal_identity;
    wal_identity.trace_fingerprint = trace_fingerprint;
    wal_identity.num_shards = options.num_shards;
    wal_identity.epoch_seconds = options.epoch_seconds;
    wal_identity.server_seed = options.server_seed;
    wal_identity.obfuscation_seed = options.obfuscation_seed;

    if (options.recover) {
      TBF_ASSIGN_OR_RETURN(
          RecoveredRun recovered,
          RecoverReplayDir(options.durable_dir, RecoveryPolicy{},
                           &run_metrics));
      if (recovered.wal.has_identity &&
          !(recovered.wal.identity == wal_identity)) {
        return Status::FailedPrecondition(
            "recover: the journal in " + options.durable_dir +
            " belongs to a different run (identity mismatch)");
      }
      retained = std::move(recovered.retained);
      report.wal_truncated_records = recovered.wal.truncated_records;
      if (recovered.checkpoint.has_value()) {
        TBF_RETURN_NOT_OK(restore_from_checkpoint(*recovered.checkpoint));
      }
      std::vector<std::shared_ptr<const CompleteHst>> republish_trees;
      republish_trees.reserve(options.republishes.size());
      for (const ReplayRepublish& entry : options.republishes) {
        republish_trees.push_back(entry.tree);
      }
      TBF_ASSIGN_OR_RETURN(
          WalReplayResult applied,
          ReplayWalSuffix(server.get(), recovered.wal.records,
                          recovered.suffix_begin, republish_trees,
                          &run_metrics));
      report.recovered_events = applied.recovered_events;
      resume_windows = std::move(applied.windows);
      if (!resume_windows.empty()) {
        // Rewind the cursor to the first suffix window's start: the loop
        // re-enters it and skips exactly the journaled work.
        const RecoveredWindow& first = resume_windows.front();
        begin = static_cast<size_t>(first.begin_index);
        arrivals_obfuscated = first.arrivals_obfuscated;
        next_task_slot = static_cast<int>(first.next_task_slot);
        report.resumed = true;
      }
      // The engine's tree epoch counts schedule entries applied (via the
      // checkpoint fast-forward and/or journaled republish records).
      next_republish = static_cast<size_t>(server->tree_epoch());
      report.republishes = server->tree_epoch();
    }
    TBF_ASSIGN_OR_RETURN(wal, WalWriter::Open(options.durable_dir,
                                              wal_identity, options.wal_fsync,
                                              &run_metrics));
  }

  WallTimer total_timer;
  uint64_t epochs_completed_this_run = 0;

  while (begin < n) {
    const int64_t epoch = event_epoch[begin];
    size_t end = begin;
    while (end < n && event_epoch[end] == epoch) ++end;

    // Scheduled live republishes fire at the window boundary, before the
    // window's obfuscation, budget rollover and dispatch: the swap is
    // atomic with respect to every event, so nothing in this window can
    // straddle it.
    while (next_republish < options.republishes.size() &&
           options.republishes[next_republish].at_epoch <= epoch) {
      Result<RepublishReport> republished =
          server->Republish(options.republishes[next_republish].tree);
      if (!republished.ok()) return republished.status();
      ++next_republish;
      ++report.republishes;
      if (wal != nullptr) {
        WalRecord rec;
        rec.kind = WalRecordKind::kRepublish;
        rec.tree_epoch = server->tree_epoch();
        TBF_RETURN_NOT_OK(wal->Append(&rec));
      }
    }

    // Recovery re-entry: `rw` describes what the journal proved this
    // window had already completed. The loop recomputes the window from
    // the trace and skips exactly that much work — re-journaling,
    // BeginEpoch, and re-dispatch of the journaled prefix.
    RecoveredWindow* rw = resume_window_idx < resume_windows.size()
                              ? &resume_windows[resume_window_idx]
                              : nullptr;
    if (rw != nullptr &&
        (rw->epoch != epoch || rw->begin_index != begin ||
         rw->arrivals_obfuscated != arrivals_obfuscated ||
         rw->next_task_slot != next_task_slot)) {
      return Status::Internal(
          "recovery: journaled window cursor (epoch " +
          std::to_string(rw->epoch) + ", event " +
          std::to_string(rw->begin_index) +
          ") disagrees with the replay loop (epoch " + std::to_string(epoch) +
          ", event " + std::to_string(begin) +
          ") — trace or schedule changed since the crash?");
    }
    if (wal != nullptr && !(rw != nullptr && rw->epoch_begun)) {
      WalRecord rec;
      rec.kind = WalRecordKind::kEpochBegin;
      rec.epoch = epoch;
      rec.begin_index = static_cast<uint64_t>(begin);
      rec.arrivals_obfuscated = arrivals_obfuscated;
      rec.next_task_slot = next_task_slot;
      TBF_RETURN_NOT_OK(wal->Append(&rec));
    }
    const size_t stage1_skip = rw != nullptr ? rw->stage1_records : 0;
    size_t stage1_seen = 0;
    // Journals one stage-1 (pre-dispatch) record, skipping the prefix the
    // journal already holds from before the crash.
    const auto journal_stage1 = [&](WalRecord rec) -> Status {
      const size_t ordinal = stage1_seen++;
      if (wal == nullptr || ordinal < stage1_skip) return Status::OK();
      return wal->Append(&rec);
    };

    EpochStats stats;
    stats.epoch = epoch;

    const auto quarantine = [&](size_t i, std::string cause) -> Status {
      ++stats.quarantined;
      ++report.quarantined;
      ++report.processed_events;
      quarantined_metric->Add(1);
      report.quarantined_events.push_back(QuarantineRecord{
          static_cast<uint64_t>(i), trace.events[i].id, cause});
      WalRecord rec;
      rec.kind = WalRecordKind::kQuarantine;
      rec.event_index = static_cast<uint64_t>(i);
      rec.id = trace.events[i].id;
      rec.cause = std::move(cause);
      return journal_stage1(std::move(rec));
    };
    const auto journal_stream_fault = [&](size_t i,
                                          uint8_t fault_kind) -> Status {
      WalRecord rec;
      rec.kind = WalRecordKind::kStreamFault;
      rec.event_index = static_cast<uint64_t>(i);
      rec.fault_kind = fault_kind;
      return journal_stage1(std::move(rec));
    };

    // The window's event order, after quarantine and after the armed
    // fault plan's stream mutations (site "replay.event", hit-indexed by
    // the absolute trace position so a plan means the same thing across
    // epoch cuts and checkpoint resumes). Drops vanish here (counted),
    // duplicates appear twice, a reorder swaps the event with its next
    // surviving successor inside the window.
    std::vector<uint64_t> order;
    order.reserve(end - begin);
    std::optional<uint64_t> reorder_deferred;
    const auto emit = [&](uint64_t idx) {
      order.push_back(idx);
      if (reorder_deferred) {
        order.push_back(*reorder_deferred);
        reorder_deferred.reset();
      }
    };
    for (size_t i = begin; i < end; ++i) {
      if (quarantining && poison[i]) {
        TBF_RETURN_NOT_OK(quarantine(i, poison_cause[i]));
        continue;
      }
      const std::optional<fault::FaultAction> action =
          TBF_FAULT_ONHIT_AT("replay.event", static_cast<uint64_t>(i));
      if (!action) {
        emit(static_cast<uint64_t>(i));
        continue;
      }
      switch (action->kind) {
        case fault::FaultKind::kDrop:
          ++report.faults_dropped;
          TBF_RETURN_NOT_OK(journal_stream_fault(i, 0));
          break;
        case fault::FaultKind::kDuplicate:
          ++report.faults_duplicated;
          TBF_RETURN_NOT_OK(journal_stream_fault(i, 1));
          emit(static_cast<uint64_t>(i));
          emit(static_cast<uint64_t>(i));
          break;
        case fault::FaultKind::kReorder:
          if (!reorder_deferred) {
            ++report.faults_reordered;
            TBF_RETURN_NOT_OK(journal_stream_fault(i, 2));
            reorder_deferred = static_cast<uint64_t>(i);
          } else {
            emit(static_cast<uint64_t>(i));
          }
          break;
        case fault::FaultKind::kStall:
          ++report.faults_stalled;
          TBF_RETURN_NOT_OK(journal_stream_fault(i, 3));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(action->stall_ms));
          emit(static_cast<uint64_t>(i));
          break;
        case fault::FaultKind::kFail:
        case fault::FaultKind::kExhaustBudget:
          // A forced failure on the stream is handled like a poison
          // event: quarantined with its cause, replay continues.
          TBF_RETURN_NOT_OK(
              quarantine(i, "injected fault: " + action->status.message()));
          break;
        default:
          emit(static_cast<uint64_t>(i));
          break;
      }
    }
    if (reorder_deferred) order.push_back(*reorder_deferred);
    if (stage1_seen < stage1_skip) {
      return Status::Internal(
          "recovery: the journal holds " + std::to_string(stage1_skip) +
          " stage-1 records for epoch " + std::to_string(epoch) +
          " but the re-run window produced only " +
          std::to_string(stage1_seen) +
          " — the event stream is not reproducible (stream-fault plan "
          "not re-armed?)");
    }

    // Client-side reporting for this window, batched over the pool. The
    // fork offset makes report i of the trace independent of where the
    // epoch cut falls.
    std::vector<PreparedEvent> prepared;
    prepared.reserve(order.size());
    std::vector<Point> locations;
    for (const uint64_t gi : order) {
      const TimedEvent& event = trace.events[static_cast<size_t>(gi)];
      PreparedEvent item;
      item.event = &event;
      item.event_index = gi;
      switch (event.kind) {
        case EventKind::kWorkerArrival:
          ++stats.worker_arrivals;
          item.report_index = static_cast<int>(locations.size());
          locations.push_back(event.location);
          break;
        case EventKind::kTaskArrival:
          ++stats.task_arrivals;
          item.report_index = static_cast<int>(locations.size());
          item.task_slot = next_task_slot++;
          // Duplication faults can mint more task dispatches than the
          // trace has task arrivals.
          if (static_cast<size_t>(next_task_slot) >
              report.task_outcomes.size()) {
            report.task_outcomes.resize(static_cast<size_t>(next_task_slot));
          }
          locations.push_back(event.location);
          break;
        case EventKind::kWorkerDeparture:
          ++stats.departures;
          break;
      }
      prepared.push_back(item);
      ++report.processed_events;
    }
    // Journaled dispatch prefix of a recovered window: those events were
    // already re-applied to the engine from the journal, so the loop
    // only reconstructs their report-level bookkeeping below.
    const size_t dispatch_skip =
        rw != nullptr ? rw->dispatched.size() : 0;
    if (dispatch_skip > prepared.size()) {
      return Status::Internal(
          "recovery: the journal holds " + std::to_string(dispatch_skip) +
          " dispatched events for epoch " + std::to_string(epoch) +
          " but the re-run window prepared only " +
          std::to_string(prepared.size()) +
          " — the event stream is not reproducible (stream-fault plan "
          "not re-armed?)");
    }

    std::vector<LeafCode> code_reports;
    std::vector<LeafPath> path_reports;
    // A fully journaled window never touches the engine again, so its
    // obfuscated reports are not needed; the draw stream stays aligned
    // because report i always forks at offset arrivals_obfuscated + i.
    const bool skip_obfuscation = dispatch_skip == prepared.size() &&
                                  rw != nullptr;
    if (!skip_obfuscation) {
      obs::ScopedTimer obf_timer(&stats.obfuscate_seconds);
      if (packed) {
        code_reports =
            framework.ObfuscateCodes(locations, obfuscation_stream, &pool,
                                     nullptr, arrivals_obfuscated,
                                     options.sampler);
      } else {
        path_reports =
            framework.ObfuscateBatch(locations, obfuscation_stream, &pool,
                                     nullptr, arrivals_obfuscated,
                                     options.sampler);
      }
    }
    arrivals_obfuscated += locations.size();
    if (!locations.empty() && !skip_obfuscation) {
      // The batched pass's wall time, attributed evenly to its reports
      // (one O(1) RecordN, not one Record per report).
      const double per_report =
          stats.obfuscate_seconds / static_cast<double>(locations.size());
      obfuscate_hist->RecordN(
          per_report <= 0.0 ? 0 : static_cast<uint64_t>(per_report * 1e9),
          locations.size());
    }

    // Epoch budgets roll over at the window boundary, even across empty
    // windows (BeginEpoch jumps forward). Recovery already applied this
    // window's rollover from its journal marker.
    if (!(rw != nullptr && rw->epoch_begun)) {
      TBF_RETURN_NOT_OK(server->BeginEpoch(epoch));
    }

    // Dispatch. One lane per shard in parallel mode: lanes preserve
    // per-shard event order, the engine's locks linearize the rest.
    const auto dispatch_one = [&](const PreparedEvent& item,
                                  LaneStats* lane) -> Status {
      const TimedEvent& event = *item.event;
      const size_t idx = static_cast<size_t>(item.report_index);
      // Forced budget denial ("replay.budget", hit-indexed by absolute
      // trace position): refuse the report before it reaches the engine,
      // exactly as a cap refusal would.
      Status forced = Status::OK();
      if (event.kind != EventKind::kWorkerDeparture) {
        forced = TBF_FAULT_INJECT_AT("replay.budget", item.event_index);
      }
      // Journal-after-apply: the record carries the engine's outcome and
      // the ledger delta this one dispatch produced, so recovery can
      // replay it without re-deciding (or re-charging) anything.
      WalRecord rec;
      rec.event_index = item.event_index;
      rec.id = event.id;
      const EpochBudgetLedger* event_ledger =
          wal != nullptr ? server->ledger() : nullptr;
      const EpochBudgetLedger::Totals charged_before =
          event_ledger != nullptr ? event_ledger->totals()
                                  : EpochBudgetLedger::Totals{};
      if (wal != nullptr && event.kind != EventKind::kWorkerDeparture) {
        rec.packed = packed;
        if (packed) {
          rec.code = code_reports[idx];
        } else {
          rec.digits = path_reports[idx];
        }
        rec.has_epsilon = declared_epsilon.has_value();
        rec.declared_epsilon = declared_epsilon.value_or(0.0);
        rec.outcome.forced = !forced.ok();
      }
      switch (event.kind) {
        case EventKind::kWorkerArrival: {
          const Status status =
              !forced.ok()
                  ? forced
                  : (packed ? server->RegisterWorker(event.id,
                                                     code_reports[idx],
                                                     declared_epsilon)
                            : server->RegisterWorker(event.id,
                                                     path_reports[idx],
                                                     declared_epsilon));
          if (status.ok()) {
            ++lane->registered;
          } else if (status.code() == StatusCode::kResourceExhausted) {
            ++lane->shed;
          } else {
            ++lane->denied;
          }
          rec.kind = WalRecordKind::kWorkerArrival;
          rec.outcome.status_code = static_cast<int32_t>(status.code());
          if (!status.ok()) rec.outcome.message = status.message();
          break;
        }
        case EventKind::kTaskArrival: {
          TaskOutcome& outcome =
              report.task_outcomes[static_cast<size_t>(item.task_slot)];
          outcome.task_id = event.id;
          rec.kind = WalRecordKind::kTaskArrival;
          rec.task_slot = item.task_slot;
          if (!forced.ok()) {
            outcome.status = forced;
            ++lane->denied;
            rec.outcome.status_code = static_cast<int32_t>(forced.code());
            rec.outcome.message = forced.message();
            break;
          }
          Result<DispatchResult> dispatched =
              packed ? server->SubmitTask(event.id, code_reports[idx],
                                          declared_epsilon)
                     : server->SubmitTask(event.id, path_reports[idx],
                                          declared_epsilon);
          if (dispatched.ok()) {
            outcome.worker = dispatched->worker;
            outcome.reported_tree_distance = dispatched->reported_tree_distance;
            if (outcome.worker) {
              ++lane->assigned;
              rec.outcome.has_worker = true;
              rec.outcome.worker = *outcome.worker;
            } else {
              ++lane->unassigned;
            }
            rec.outcome.tree_distance = outcome.reported_tree_distance;
          } else {
            outcome.status = dispatched.status();
            if (outcome.status.code() == StatusCode::kResourceExhausted) {
              ++lane->shed;
            } else {
              ++lane->denied;
            }
            rec.outcome.status_code =
                static_cast<int32_t>(outcome.status.code());
            rec.outcome.message = outcome.status.message();
          }
          break;
        }
        case EventKind::kWorkerDeparture: {
          Status status = server->UnregisterWorker(event.id);
          if (!status.ok()) ++lane->missed_departures;
          rec.kind = WalRecordKind::kWorkerDeparture;
          rec.missed = !status.ok();
          break;
        }
      }
      if (wal != nullptr) {
        if (event_ledger != nullptr) {
          const EpochBudgetLedger::Totals charged = event_ledger->totals();
          rec.outcome.epsilon_charged =
              charged.epsilon_spent - charged_before.epsilon_spent;
          if (charged.denied_epoch > charged_before.denied_epoch) {
            rec.outcome.budget_denied = 1;
          } else if (charged.denied_lifetime > charged_before.denied_lifetime) {
            rec.outcome.budget_denied = 2;
          }
        }
        TBF_RETURN_NOT_OK(wal->Append(&rec));
      }
      return Status::OK();
    };

    // Reconstructs the report-level bookkeeping of one journaled dispatch
    // (the engine was already advanced by recovery's journal replay) and
    // verifies the re-run window lines up with the journal.
    const auto skip_journaled = [&](const PreparedEvent& item,
                                    const WalRecord& logged,
                                    LaneStats* lane) -> Status {
      const TimedEvent& event = *item.event;
      WalRecordKind want = WalRecordKind::kWorkerDeparture;
      if (event.kind == EventKind::kWorkerArrival) {
        want = WalRecordKind::kWorkerArrival;
      } else if (event.kind == EventKind::kTaskArrival) {
        want = WalRecordKind::kTaskArrival;
      }
      if (logged.kind != want || logged.event_index != item.event_index ||
          logged.id != event.id) {
        return Status::Internal(
            "recovery: re-run window event " +
            std::to_string(item.event_index) + " ('" + event.id +
            "') disagrees with the journaled record at lsn " +
            std::to_string(logged.lsn) +
            " — the event stream is not reproducible");
      }
      const StatusCode logged_code =
          static_cast<StatusCode>(logged.outcome.status_code);
      switch (event.kind) {
        case EventKind::kWorkerArrival:
          if (logged.outcome.status_code == 0) {
            ++lane->registered;
          } else if (logged_code == StatusCode::kResourceExhausted) {
            ++lane->shed;
          } else {
            ++lane->denied;
          }
          break;
        case EventKind::kTaskArrival: {
          if (logged.task_slot != item.task_slot) {
            return Status::Internal(
                "recovery: journaled task slot " +
                std::to_string(logged.task_slot) +
                " disagrees with the re-run slot " +
                std::to_string(item.task_slot) + " at lsn " +
                std::to_string(logged.lsn));
          }
          TaskOutcome& outcome =
              report.task_outcomes[static_cast<size_t>(item.task_slot)];
          outcome.task_id = event.id;
          if (logged.outcome.status_code == 0) {
            outcome.status = Status::OK();
            outcome.reported_tree_distance = logged.outcome.tree_distance;
            if (logged.outcome.has_worker) {
              outcome.worker = logged.outcome.worker;
              ++lane->assigned;
            } else {
              outcome.worker = std::nullopt;
              ++lane->unassigned;
            }
          } else {
            outcome.status = Status(logged_code, logged.outcome.message);
            if (logged_code == StatusCode::kResourceExhausted) {
              ++lane->shed;
            } else {
              ++lane->denied;
            }
          }
          break;
        }
        case EventKind::kWorkerDeparture:
          if (logged.missed) ++lane->missed_departures;
          break;
      }
      return Status::OK();
    };

    // Ledger totals bracket the dispatch: every charge (and denial)
    // happens inside it, so the delta is this epoch's privacy spend.
    const EpochBudgetLedger* ledger = server->ledger();
    const EpochBudgetLedger::Totals totals_before =
        ledger ? ledger->totals() : EpochBudgetLedger::Totals{};

    obs::ScopedTimer dispatch_timer(&stats.dispatch_seconds);
    std::vector<LaneStats> lanes;
    if (!options.parallel_dispatch || options.num_shards == 1) {
      lanes.resize(1);
      size_t pos = 0;
      for (const PreparedEvent& item : prepared) {
        if (pos < dispatch_skip) {
          TBF_RETURN_NOT_OK(
              skip_journaled(item, rw->dispatched[pos], &lanes[0]));
          ++pos;
          continue;
        }
        ++pos;
        TBF_RETURN_NOT_OK(dispatch_one(item, &lanes[0]));
      }
    } else {
      const size_t num_lanes = static_cast<size_t>(options.num_shards);
      lanes.resize(num_lanes);
      std::vector<std::vector<const PreparedEvent*>> queues(num_lanes);
      const ShardRouter& router = server->router();
      // All of one worker's events in the epoch must share a lane, or a
      // departure (or re-registration) could overtake the arrival it
      // follows in event time and leave the pool in a state sequential
      // replay can never reach. First event of the worker picks the lane
      // (its home shard for arrivals, an id-hash for bare departures);
      // later same-worker events stick to it. Tasks are single-shot, so
      // their home shard is always safe.
      std::unordered_map<std::string, size_t> worker_lane;
      const auto home_shard = [&](int report_index) {
        const size_t idx = static_cast<size_t>(report_index);
        return static_cast<size_t>(
            packed ? router.ShardOf(code_reports[idx], *codec)
                   : router.ShardOf(path_reports[idx]));
      };
      for (const PreparedEvent& item : prepared) {
        size_t lane;
        if (item.event->kind == EventKind::kTaskArrival) {
          lane = home_shard(item.report_index);
        } else {
          auto it = worker_lane.find(item.event->id);
          if (it != worker_lane.end()) {
            lane = it->second;
          } else {
            lane = item.event->kind == EventKind::kWorkerArrival
                       ? home_shard(item.report_index)
                       : std::hash<std::string>{}(item.event->id) % num_lanes;
            worker_lane.emplace(item.event->id, lane);
          }
        }
        queues[lane].push_back(&item);
      }
      std::vector<Status> lane_status(num_lanes);
      pool.ParallelFor(num_lanes, [&](size_t lane_begin, size_t lane_end) {
        for (size_t lane = lane_begin; lane < lane_end; ++lane) {
          for (const PreparedEvent* item : queues[lane]) {
            // Journaling is sequential-only (validated above), so this
            // can only fail once a future mode journals in parallel.
            Status dispatched = dispatch_one(*item, &lanes[lane]);
            if (!dispatched.ok()) {
              lane_status[lane] = std::move(dispatched);
              break;
            }
          }
        }
      });
      for (const Status& status : lane_status) TBF_RETURN_NOT_OK(status);
    }
    dispatch_timer.Stop();  // stats.dispatch_seconds += elapsed
    if (ledger != nullptr) {
      const EpochBudgetLedger::Totals& totals = ledger->totals();
      stats.epsilon_spent = totals.epsilon_spent - totals_before.epsilon_spent;
      stats.denied_epoch_budget =
          totals.denied_epoch - totals_before.denied_epoch;
      stats.denied_lifetime_budget =
          totals.denied_lifetime - totals_before.denied_lifetime;
    }
    if (rw != nullptr) {
      // The journaled prefix's charges landed during recovery's journal
      // replay, before this window's bracket: add them back so the
      // window's stats match the uninterrupted run.
      stats.epsilon_spent += rw->epsilon_charged;
      stats.denied_epoch_budget += rw->denied_epoch;
      stats.denied_lifetime_budget += rw->denied_lifetime;
    }
    for (const LaneStats& lane : lanes) {
      report.registered += lane.registered;
      stats.assigned += lane.assigned;
      stats.unassigned += lane.unassigned;
      stats.denied += lane.denied;
      stats.shed += lane.shed;
      report.missed_departures += lane.missed_departures;
    }

    report.assigned += stats.assigned;
    report.unassigned += stats.unassigned;
    report.denied += stats.denied;
    report.shed += stats.shed;
    report.obfuscate_seconds += stats.obfuscate_seconds;
    report.dispatch_seconds += stats.dispatch_seconds;
    report.per_epoch.push_back(stats);
    begin = end;
    if (rw != nullptr) ++resume_window_idx;

    ++epochs_completed_this_run;
    const auto build_checkpoint = [&]() -> ReplayCheckpoint {
      ReplayCheckpoint ckpt;
      ckpt.trace_fingerprint = trace_fingerprint;
      ckpt.num_shards = options.num_shards;
      ckpt.epoch_seconds = options.epoch_seconds;
      ckpt.server_seed = options.server_seed;
      ckpt.obfuscation_seed = options.obfuscation_seed;
      ckpt.next_event = static_cast<uint64_t>(end);
      ckpt.arrivals_obfuscated = arrivals_obfuscated;
      ckpt.next_task_slot = next_task_slot;
      ckpt.report.registered = report.registered;
      ckpt.report.assigned = report.assigned;
      ckpt.report.unassigned = report.unassigned;
      ckpt.report.denied = report.denied;
      ckpt.report.shed = report.shed;
      ckpt.report.quarantined = report.quarantined;
      ckpt.report.missed_departures = report.missed_departures;
      ckpt.report.processed_events = report.processed_events;
      ckpt.report.faults_dropped = report.faults_dropped;
      ckpt.report.faults_duplicated = report.faults_duplicated;
      ckpt.report.faults_reordered = report.faults_reordered;
      ckpt.report.faults_stalled = report.faults_stalled;
      ckpt.report.checkpoints_written = report.checkpoints_written;
      ckpt.per_epoch = report.per_epoch;
      ckpt.task_outcomes.assign(
          report.task_outcomes.begin(),
          report.task_outcomes.begin() + next_task_slot);
      ckpt.quarantined_events = report.quarantined_events;
      ckpt.server = server->ExportState();
      ckpt.metrics = run_metrics.Snapshot();
      return ckpt;
    };
    const bool checkpoint_due =
        epochs_completed_this_run %
            static_cast<uint64_t>(options.checkpoint_every_epochs) ==
        0;
    if (!options.checkpoint_path.empty() && checkpoint_due) {
      ++report.checkpoints_written;
      checkpoint_metric->Add(1);
      TBF_RETURN_NOT_OK(WriteReplayCheckpointFile(
          build_checkpoint(), options.checkpoint_path));
    }
    // Durable checkpoint: journal barrier first, so wal_next_lsn names a
    // durable journal position; then retention + whole-segment rotation
    // and compaction below the *oldest* retained checkpoint (keeping the
    // fallback recoverable). Suppressed while earlier recovered windows
    // are still being re-entered: a checkpoint here would claim journal
    // coverage of windows whose work is journaled but not yet in this
    // run's report.
    if (durable && checkpoint_due &&
        resume_window_idx >= resume_windows.size()) {
      TBF_RETURN_NOT_OK(wal->Sync());
      ++report.checkpoints_written;
      checkpoint_metric->Add(1);
      ReplayCheckpoint ckpt = build_checkpoint();
      ckpt.wal_next_lsn = wal->next_lsn();
      const uint64_t ordinal = report.per_epoch.size();
      const std::string ckpt_path =
          options.durable_dir + "/" + ReplayCheckpointFileName(ordinal);
      TBF_RETURN_NOT_OK(WriteReplayCheckpointFile(ckpt, ckpt_path));
      retained.push_back(
          RetainedCheckpoint{ordinal, ckpt_path, ckpt.wal_next_lsn});
      while (retained.size() >
             static_cast<size_t>(options.keep_checkpoints)) {
        std::remove(retained.front().path.c_str());
        retained.erase(retained.begin());
      }
      TBF_RETURN_NOT_OK(wal->Rotate());
      TBF_RETURN_NOT_OK(wal->CompactBelow(retained.front().wal_next_lsn));
    }
    // Kill site, hit-indexed by the absolute epoch ordinal (stable across
    // resumes). It fires AFTER the checkpoint is durable, so a chaos plan
    // that aborts here models a crash whose latest checkpoint survived.
    TBF_RETURN_NOT_OK(TBF_FAULT_INJECT_AT(
        "replay.epoch", static_cast<uint64_t>(report.per_epoch.size() - 1)));
  }

  if (resume_window_idx < resume_windows.size()) {
    return Status::Internal(
        "recovery: " +
        std::to_string(resume_windows.size() - resume_window_idx) +
        " journaled window(s) were never re-entered by the replay loop — "
        "trace shorter than the journaled run?");
  }
  // Final journal barrier: everything this run processed is durable
  // before the report is assembled.
  if (wal != nullptr) TBF_RETURN_NOT_OK(wal->Close());

  report.epochs = report.per_epoch.size();
  report.wall_seconds = total_timer.ElapsedSeconds();
  report.events_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.events) / report.wall_seconds
          : 0.0;
  report.available_workers_end = server->available_workers();

  // Flight-recorder summary: one merged snapshot of the run registry,
  // with the headline series pulled out into typed fields.
  report.metrics = run_metrics.Snapshot();
  if (const obs::HistogramSample* h =
          report.metrics.FindHistogram("tbf_serve_dispatch_latency_ns")) {
    report.dispatch_p50_ns = h->Quantile(0.50);
    report.dispatch_p95_ns = h->Quantile(0.95);
    report.dispatch_p99_ns = h->Quantile(0.99);
  }
  if (const obs::HistogramSample* h =
          report.metrics.FindHistogram("tbf_replay_obfuscate_latency_ns")) {
    report.obfuscate_p50_ns = h->Quantile(0.50);
    report.obfuscate_p95_ns = h->Quantile(0.95);
    report.obfuscate_p99_ns = h->Quantile(0.99);
  }
  report.crossshard_fanouts = static_cast<uint64_t>(
      report.metrics.CounterValue("tbf_serve_crossshard_fanout_total"));
  report.per_shard.resize(static_cast<size_t>(server->num_shards()));
  for (int s = 0; s < server->num_shards(); ++s) {
    const std::string label = std::to_string(s);
    ShardReplayCounters& shard = report.per_shard[static_cast<size_t>(s)];
    shard.shard = s;
    shard.worker_arrivals =
        static_cast<uint64_t>(report.metrics.CounterValue(obs::LabeledName(
            "tbf_serve_worker_arrivals_total", "shard", label)));
    shard.departures = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_departures_total", "shard", label)));
    shard.tasks = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_tasks_total", "shard", label)));
    shard.assigned = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_assigned_total", "shard", label)));
  }
  if (const EpochBudgetLedger* ledger = server->ledger()) {
    const EpochBudgetLedger::Totals& totals = ledger->totals();
    report.epsilon_spent = totals.epsilon_spent;
    report.denied_epoch_budget = totals.denied_epoch;
    report.denied_lifetime_budget = totals.denied_lifetime;
  }
  if (options.export_final_state) report.final_state = server->ExportState();
  return report;
}

}  // namespace tbf
