#include "serve/replay.h"

#include <cmath>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "serve/sharded_server.h"

namespace tbf {

namespace {

// One epoch's worth of dispatch work for a single event, pre-resolved to
// the obfuscated report and its home lane.
struct PreparedEvent {
  const TimedEvent* event = nullptr;
  int report_index = -1;  // into the epoch's obfuscated batch (arrivals)
  int task_slot = -1;     // into ReplayReport::task_outcomes (tasks)
};

struct LaneStats {
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;
  size_t missed_departures = 0;
};

}  // namespace

Result<ReplayReport> RunEventReplay(const TbfFramework& framework,
                                    const EventTrace& trace,
                                    const ReplayOptions& options) {
  if (options.epoch_seconds <= 0.0) {
    return Status::InvalidArgument("epoch_seconds must be positive");
  }
  for (size_t i = 0; i < trace.events.size(); ++i) {
    if (!std::isfinite(trace.events[i].time)) {
      return Status::InvalidArgument("event times must be finite (event " +
                                     std::to_string(i) + ")");
    }
    if (i > 0 && trace.events[i].time < trace.events[i - 1].time) {
      return Status::InvalidArgument(
          "events must be in nondecreasing time order (event " +
          std::to_string(i) + ")");
    }
  }

  // Each run instruments a private registry: interval deltas, latency
  // percentiles and per-shard counters then describe exactly this run,
  // isolated from the process-wide registry and concurrent replays.
  // Declared before the server so every engine handle stays valid for
  // the server's whole lifetime.
  obs::MetricRegistry run_metrics;
  obs::Histogram* obfuscate_hist =
      run_metrics.FindOrCreateHistogram("tbf_replay_obfuscate_latency_ns");

  ShardedServerOptions server_options;
  server_options.num_shards = options.num_shards;
  server_options.lifetime_budget = options.lifetime_budget;
  server_options.epoch_budget = options.epoch_budget;
  server_options.tie_break = options.tie_break;
  server_options.seed = options.server_seed;
  server_options.metrics = &run_metrics;
  TBF_ASSIGN_OR_RETURN(std::unique_ptr<ShardedTbfServer> server,
                       ShardedTbfServer::Create(framework.tree_ptr(),
                                                server_options));

  const bool budgets_on =
      options.lifetime_budget.has_value() || options.epoch_budget.has_value();
  const std::optional<double> declared_epsilon =
      budgets_on ? std::optional<double>(framework.epsilon()) : std::nullopt;

  ReplayReport report;
  for (const TimedEvent& event : trace.events) {
    switch (event.kind) {
      case EventKind::kWorkerArrival: ++report.worker_arrivals; break;
      case EventKind::kTaskArrival: ++report.task_arrivals; break;
      case EventKind::kWorkerDeparture: ++report.departures; break;
    }
  }
  report.events = trace.events.size();
  report.task_outcomes.resize(report.task_arrivals);
  if (trace.events.empty()) {
    report.available_workers_end = 0;
    return report;
  }

  ThreadPool pool(options.threads);
  const Rng obfuscation_stream(options.obfuscation_seed);
  // Packed fast path: obfuscate, route and dispatch entirely on LeafCodes
  // (one uint64 per report, no LeafPath materialized per event). Trees too
  // deep for 64-bit codes degrade to the LeafPath pipeline — same arrivals,
  // same draws, just heavier reports.
  const LeafCodec* codec = framework.codec();
  const bool packed = codec != nullptr;
  const double t0 = trace.events.front().time;
  uint64_t arrivals_obfuscated = 0;  // global ForkAt offset
  int next_task_slot = 0;
  WallTimer total_timer;

  size_t begin = 0;
  while (begin < trace.events.size()) {
    const int64_t epoch = static_cast<int64_t>(
        std::floor((trace.events[begin].time - t0) / options.epoch_seconds));
    size_t end = begin;
    while (end < trace.events.size() &&
           static_cast<int64_t>(std::floor(
               (trace.events[end].time - t0) / options.epoch_seconds)) == epoch) {
      ++end;
    }

    EpochStats stats;
    stats.epoch = epoch;

    // Client-side reporting for this window, batched over the pool. The
    // fork offset makes report i of the trace independent of where the
    // epoch cut falls.
    std::vector<PreparedEvent> prepared;
    prepared.reserve(end - begin);
    std::vector<Point> locations;
    for (size_t i = begin; i < end; ++i) {
      const TimedEvent& event = trace.events[i];
      PreparedEvent item;
      item.event = &event;
      switch (event.kind) {
        case EventKind::kWorkerArrival:
          ++stats.worker_arrivals;
          item.report_index = static_cast<int>(locations.size());
          locations.push_back(event.location);
          break;
        case EventKind::kTaskArrival:
          ++stats.task_arrivals;
          item.report_index = static_cast<int>(locations.size());
          item.task_slot = next_task_slot++;
          locations.push_back(event.location);
          break;
        case EventKind::kWorkerDeparture:
          ++stats.departures;
          break;
      }
      prepared.push_back(item);
    }
    std::vector<LeafCode> code_reports;
    std::vector<LeafPath> path_reports;
    {
      obs::ScopedTimer obf_timer(&stats.obfuscate_seconds);
      if (packed) {
        code_reports = framework.ObfuscateCodes(
            locations, obfuscation_stream, &pool, nullptr, arrivals_obfuscated);
      } else {
        path_reports = framework.ObfuscateBatch(
            locations, obfuscation_stream, &pool, nullptr, arrivals_obfuscated);
      }
    }
    arrivals_obfuscated += locations.size();
    if (!locations.empty()) {
      // The batched pass's wall time, attributed evenly to its reports
      // (one O(1) RecordN, not one Record per report).
      const double per_report =
          stats.obfuscate_seconds / static_cast<double>(locations.size());
      obfuscate_hist->RecordN(
          per_report <= 0.0 ? 0 : static_cast<uint64_t>(per_report * 1e9),
          locations.size());
    }

    // Epoch budgets roll over at the window boundary, even across empty
    // windows (BeginEpoch jumps forward).
    TBF_RETURN_NOT_OK(server->BeginEpoch(epoch));

    // Dispatch. One lane per shard in parallel mode: lanes preserve
    // per-shard event order, the engine's locks linearize the rest.
    const auto dispatch_one = [&](const PreparedEvent& item,
                                  LaneStats* lane) {
      const TimedEvent& event = *item.event;
      const size_t idx = static_cast<size_t>(item.report_index);
      switch (event.kind) {
        case EventKind::kWorkerArrival: {
          Status status =
              packed ? server->RegisterWorker(event.id, code_reports[idx],
                                              declared_epsilon)
                     : server->RegisterWorker(event.id, path_reports[idx],
                                              declared_epsilon);
          if (!status.ok()) ++lane->denied;
          break;
        }
        case EventKind::kTaskArrival: {
          Result<DispatchResult> dispatched =
              packed ? server->SubmitTask(event.id, code_reports[idx],
                                          declared_epsilon)
                     : server->SubmitTask(event.id, path_reports[idx],
                                          declared_epsilon);
          TaskOutcome& outcome =
              report.task_outcomes[static_cast<size_t>(item.task_slot)];
          outcome.task_id = event.id;
          if (dispatched.ok()) {
            outcome.worker = dispatched->worker;
            outcome.reported_tree_distance = dispatched->reported_tree_distance;
            if (outcome.worker) {
              ++lane->assigned;
            } else {
              ++lane->unassigned;
            }
          } else {
            outcome.status = dispatched.status();
            ++lane->denied;
          }
          break;
        }
        case EventKind::kWorkerDeparture: {
          Status status = server->UnregisterWorker(event.id);
          if (!status.ok()) ++lane->missed_departures;
          break;
        }
      }
    };

    // Ledger totals bracket the dispatch: every charge (and denial)
    // happens inside it, so the delta is this epoch's privacy spend.
    const EpochBudgetLedger* ledger = server->ledger();
    const EpochBudgetLedger::Totals totals_before =
        ledger ? ledger->totals() : EpochBudgetLedger::Totals{};

    obs::ScopedTimer dispatch_timer(&stats.dispatch_seconds);
    std::vector<LaneStats> lanes;
    if (!options.parallel_dispatch || options.num_shards == 1) {
      lanes.resize(1);
      for (const PreparedEvent& item : prepared) dispatch_one(item, &lanes[0]);
    } else {
      const size_t num_lanes = static_cast<size_t>(options.num_shards);
      lanes.resize(num_lanes);
      std::vector<std::vector<const PreparedEvent*>> queues(num_lanes);
      const ShardRouter& router = server->router();
      // All of one worker's events in the epoch must share a lane, or a
      // departure (or re-registration) could overtake the arrival it
      // follows in event time and leave the pool in a state sequential
      // replay can never reach. First event of the worker picks the lane
      // (its home shard for arrivals, an id-hash for bare departures);
      // later same-worker events stick to it. Tasks are single-shot, so
      // their home shard is always safe.
      std::unordered_map<std::string, size_t> worker_lane;
      const auto home_shard = [&](int report_index) {
        const size_t idx = static_cast<size_t>(report_index);
        return static_cast<size_t>(
            packed ? router.ShardOf(code_reports[idx], *codec)
                   : router.ShardOf(path_reports[idx]));
      };
      for (const PreparedEvent& item : prepared) {
        size_t lane;
        if (item.event->kind == EventKind::kTaskArrival) {
          lane = home_shard(item.report_index);
        } else {
          auto it = worker_lane.find(item.event->id);
          if (it != worker_lane.end()) {
            lane = it->second;
          } else {
            lane = item.event->kind == EventKind::kWorkerArrival
                       ? home_shard(item.report_index)
                       : std::hash<std::string>{}(item.event->id) % num_lanes;
            worker_lane.emplace(item.event->id, lane);
          }
        }
        queues[lane].push_back(&item);
      }
      pool.ParallelFor(num_lanes, [&](size_t lane_begin, size_t lane_end) {
        for (size_t lane = lane_begin; lane < lane_end; ++lane) {
          for (const PreparedEvent* item : queues[lane]) {
            dispatch_one(*item, &lanes[lane]);
          }
        }
      });
    }
    dispatch_timer.Stop();  // stats.dispatch_seconds += elapsed
    if (ledger != nullptr) {
      const EpochBudgetLedger::Totals& totals = ledger->totals();
      stats.epsilon_spent = totals.epsilon_spent - totals_before.epsilon_spent;
      stats.denied_epoch_budget =
          totals.denied_epoch - totals_before.denied_epoch;
      stats.denied_lifetime_budget =
          totals.denied_lifetime - totals_before.denied_lifetime;
    }
    for (const LaneStats& lane : lanes) {
      stats.assigned += lane.assigned;
      stats.unassigned += lane.unassigned;
      stats.denied += lane.denied;
      report.missed_departures += lane.missed_departures;
    }

    report.assigned += stats.assigned;
    report.unassigned += stats.unassigned;
    report.denied += stats.denied;
    report.obfuscate_seconds += stats.obfuscate_seconds;
    report.dispatch_seconds += stats.dispatch_seconds;
    report.per_epoch.push_back(stats);
    begin = end;
  }

  report.epochs = report.per_epoch.size();
  report.wall_seconds = total_timer.ElapsedSeconds();
  report.events_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.events) / report.wall_seconds
          : 0.0;
  report.available_workers_end = server->available_workers();

  // Flight-recorder summary: one merged snapshot of the run registry,
  // with the headline series pulled out into typed fields.
  report.metrics = run_metrics.Snapshot();
  if (const obs::HistogramSample* h =
          report.metrics.FindHistogram("tbf_serve_dispatch_latency_ns")) {
    report.dispatch_p50_ns = h->Quantile(0.50);
    report.dispatch_p95_ns = h->Quantile(0.95);
    report.dispatch_p99_ns = h->Quantile(0.99);
  }
  if (const obs::HistogramSample* h =
          report.metrics.FindHistogram("tbf_replay_obfuscate_latency_ns")) {
    report.obfuscate_p50_ns = h->Quantile(0.50);
    report.obfuscate_p95_ns = h->Quantile(0.95);
    report.obfuscate_p99_ns = h->Quantile(0.99);
  }
  report.crossshard_fanouts = static_cast<uint64_t>(
      report.metrics.CounterValue("tbf_serve_crossshard_fanout_total"));
  report.per_shard.resize(static_cast<size_t>(server->num_shards()));
  for (int s = 0; s < server->num_shards(); ++s) {
    const std::string label = std::to_string(s);
    ShardReplayCounters& shard = report.per_shard[static_cast<size_t>(s)];
    shard.shard = s;
    shard.worker_arrivals =
        static_cast<uint64_t>(report.metrics.CounterValue(obs::LabeledName(
            "tbf_serve_worker_arrivals_total", "shard", label)));
    shard.departures = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_departures_total", "shard", label)));
    shard.tasks = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_tasks_total", "shard", label)));
    shard.assigned = static_cast<uint64_t>(report.metrics.CounterValue(
        obs::LabeledName("tbf_serve_assigned_total", "shard", label)));
  }
  if (const EpochBudgetLedger* ledger = server->ledger()) {
    const EpochBudgetLedger::Totals& totals = ledger->totals();
    report.epsilon_spent = totals.epsilon_spent;
    report.denied_epoch_budget = totals.denied_epoch;
    report.denied_lifetime_budget = totals.denied_lifetime;
  }
  return report;
}

}  // namespace tbf
