// Segmented write-ahead event journal for the replay loop.
//
// Every event the serving loop processes — worker arrival, task arrival,
// departure, quarantine, stream-fault bookkeeping, live republish, epoch
// boundary — is appended to the journal *with the obfuscated report it
// carried and the outcome (status, assignment, ledger charge) the engine
// produced*, before the loop moves on. Together with the periodic
// checkpoints (serve/checkpoint.h) this closes the durability gap between
// checkpoints: after a crash anywhere, the recovery supervisor
// (serve/recovery.h) restores the newest valid checkpoint and replays the
// journal suffix through the engine, reproducing state field-for-field
// identical to an uninterrupted run. Logging the report (not just the
// event) matters in a DP system: re-collecting a location to rebuild
// state would re-spend privacy budget; replaying the logged report spends
// nothing.
//
// On-disk layout. A journal is a directory of segment files
// `wal-<seq:08>.seg`. Each segment is a stream of CRC-framed records:
//
//   frame   := <len:u32> <crc:u32> <payload: len bytes>
//   payload := <kind:u8> <lsn:u64> <kind-specific fields>
//
// All integers are little-endian; doubles are IEEE-754 bit patterns
// (u64); strings are <len:u32><bytes>; leaf paths are <len:u32> u16
// digits. The CRC-32 (IEEE reflected, zlib/binascii-compatible, the same
// Crc32 as checkpoints and snapshots) covers the payload bytes, so
// tools/check_wal.py can validate a segment with only the Python
// standard library. The first record of every segment is a
// kSegmentHeader carrying the format version, the segment sequence
// number, and the run's identity (trace fingerprint, shard count, epoch
// length, seeds) so recovery can refuse a journal that belongs to a
// different run even when no checkpoint survived.
//
// LSNs are assigned by the writer and strictly increase by one across
// records *and* segments (segment headers consume an LSN too), so a
// checkpoint's `wal_next_lsn` names an exact journal position: recovery
// replays records with lsn >= wal_next_lsn and compaction deletes
// segments entirely below the oldest retained checkpoint.
//
// Durability policies (WalFsyncPolicy):
//   kEveryRecord  — write + fsync after every append. Survives power
//                   loss up to the last acknowledged record.
//   kGroupCommit  — appends buffer in memory; write + fsync when the
//                   group reaches max_records or max_bytes, or when
//                   max_delay_seconds elapsed since the group opened
//                   (checked at the next append; Sync() flushes
//                   unconditionally). A crash loses at most one group.
//   kNone         — write (libc flush, no fsync) per append. Survives a
//                   process crash, not power loss.
//
// Torn-tail repair: a crash mid-write leaves a partial frame (or a frame
// whose payload CRC no longer matches) at the end of the *last* segment.
// ScanWalDir truncates the tail at the first bad frame with a
// record-precise status; a bad frame in any non-last segment is
// corruption, not a torn write, and fails the scan (InvalidArgument).
//
// Fault sites (docs/ROBUSTNESS.md): "wal.append" (hit-indexed by LSN; a
// forced failure simulates a crash, leaving a deterministic torn prefix
// of the unflushed bytes on disk), "wal.fsync", "wal.rotate"
// (hit-indexed by new segment seq).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "hst/leaf_path.h"
#include "obs/metrics.h"

namespace tbf {

/// \brief Identity of the run a journal belongs to; mirrors the
/// checkpoint identity fields. Recovery refuses a journal whose identity
/// does not match the run being recovered.
struct WalIdentity {
  uint32_t trace_fingerprint = 0;
  int32_t num_shards = 1;
  double epoch_seconds = 0.0;
  uint64_t server_seed = 0;
  uint64_t obfuscation_seed = 0;

  bool operator==(const WalIdentity& o) const {
    return trace_fingerprint == o.trace_fingerprint &&
           num_shards == o.num_shards && epoch_seconds == o.epoch_seconds &&
           server_seed == o.server_seed &&
           obfuscation_seed == o.obfuscation_seed;
  }
};

enum class WalRecordKind : uint8_t {
  kSegmentHeader = 0,   ///< first record of every segment
  kEpochBegin = 1,      ///< one event window opens
  kWorkerArrival = 2,   ///< dispatched worker registration + outcome
  kTaskArrival = 3,     ///< dispatched task submission + outcome
  kWorkerDeparture = 4, ///< dispatched unregistration + outcome
  kQuarantine = 5,      ///< poison/fault event quarantined (report-level)
  kStreamFault = 6,     ///< stream mutation bookkeeping (report-level)
  kRepublish = 7,       ///< live tree swap applied
};

/// \brief Engine outcome of one dispatched event, as journaled.
struct WalOutcome {
  int32_t status_code = 0;   ///< StatusCode as int (0 = OK)
  std::string message;       ///< status message ("" when OK)
  bool has_worker = false;   ///< task: a worker was assigned
  std::string worker;        ///< task: assigned worker id
  double tree_distance = 0.0;      ///< task: reported tree distance
  double epsilon_charged = 0.0;    ///< ledger delta of this dispatch
  uint8_t budget_denied = 0;       ///< 0 none, 1 epoch cap, 2 lifetime cap
  /// True when an injected fault refused the report *before* it reached
  /// the engine ("replay.budget"): recovery must not re-apply it either.
  bool forced = false;
};

/// \brief One journal record — a tagged union over WalRecordKind; only
/// the fields of the active kind are serialized.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kEpochBegin;
  uint64_t lsn = 0;  ///< assigned by WalWriter::Append

  // kSegmentHeader
  uint32_t format_version = 1;
  uint64_t segment_seq = 0;
  WalIdentity identity;

  // kEpochBegin: the loop cursor at the window start.
  int64_t epoch = 0;
  uint64_t begin_index = 0;          ///< first trace index of the window
  uint64_t arrivals_obfuscated = 0;  ///< global ForkAt offset
  int64_t next_task_slot = 0;

  // Dispatch records (arrival/task/departure/quarantine/stream fault).
  uint64_t event_index = 0;  ///< absolute index into EventTrace::events
  std::string id;            ///< worker/task id
  bool packed = false;       ///< report representation
  uint64_t code = 0;         ///< packed LeafCode bits (packed mode)
  LeafPath digits;           ///< LeafPath digits (path mode)
  bool has_epsilon = false;
  double declared_epsilon = 0.0;
  int64_t task_slot = -1;    ///< kTaskArrival: ReplayReport slot
  bool missed = false;       ///< kWorkerDeparture: unregister failed
  WalOutcome outcome;

  // kQuarantine
  std::string cause;
  // kStreamFault: 0 drop, 1 duplicate, 2 reorder, 3 stall.
  uint8_t fault_kind = 0;
  // kRepublish: the engine's tree epoch after the swap.
  uint64_t tree_epoch = 0;
};

/// \brief When the journal write + fsync happens (see the file comment).
///
/// Group-commit defaults: `max_delay_seconds` is the durability bound (a
/// crash loses at most that much event time), checked at the next append —
/// an idle stream holds its last group until the next record or an
/// explicit Sync(). `max_records`/`max_bytes` bound memory and the
/// recovery replay window at high event rates, where a per-group fsync
/// would otherwise dominate throughput.
struct WalFsyncPolicy {
  enum class Kind { kEveryRecord, kGroupCommit, kNone };
  Kind kind = Kind::kGroupCommit;
  size_t max_records = 4096;      ///< kGroupCommit: records per group
  size_t max_bytes = 1 << 20;     ///< kGroupCommit: bytes per group
  double max_delay_seconds = 0.02;  ///< kGroupCommit: group age bound

  static WalFsyncPolicy EveryRecord() {
    return WalFsyncPolicy{Kind::kEveryRecord, 0, 0, 0.0};
  }
  static WalFsyncPolicy GroupCommit(size_t max_records = 4096,
                                    size_t max_bytes = 1 << 20,
                                    double max_delay_seconds = 0.02) {
    return WalFsyncPolicy{Kind::kGroupCommit, max_records, max_bytes,
                          max_delay_seconds};
  }
  static WalFsyncPolicy None() {
    return WalFsyncPolicy{Kind::kNone, 0, 0, 0.0};
  }
};

/// \brief Serializes one record's payload (no frame). The writer frames
/// it as <len><crc><payload>; exposed for tests and fuzzing.
std::string EncodeWalRecord(const WalRecord& record);

/// \brief Appends the payload to `out` without clearing it. The writer's
/// hot path uses this with a reused scratch buffer so steady-state
/// appends allocate nothing.
void EncodeWalRecordTo(const WalRecord& record, std::string* out);

/// \brief Parses one payload. Refuses unknown kinds, short fields and
/// trailing bytes with precise InvalidArgument statuses; never crashes
/// on corrupt input.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// \brief Appends `<len><crc><payload>` to `out` (tests/fuzzing).
void AppendWalFrame(std::string* out, std::string_view payload);

/// \brief `wal-<seq:08>.seg`.
std::string WalSegmentFileName(uint64_t seq);

struct WalSegmentInfo {
  uint64_t seq = 0;
  uint64_t first_lsn = 0;  ///< the segment header's own LSN
  std::string path;
  uint64_t records = 0;    ///< valid records incl. the header
  uint64_t bytes = 0;      ///< valid frame bytes
};

/// \brief Result of scanning (and optionally repairing) a journal dir.
struct WalScan {
  std::vector<WalRecord> records;  ///< every valid record, in LSN order
  uint64_t next_lsn = 0;           ///< first unused LSN
  std::vector<WalSegmentInfo> segments;  ///< seq order
  bool has_identity = false;
  WalIdentity identity;

  // Torn-tail repair report (all zero for a clean journal).
  uint64_t truncated_records = 0;  ///< torn frames dropped at the tail
  uint64_t truncated_bytes = 0;    ///< bytes dropped at the tail
  std::string tail_detail;         ///< record-precise repair description
};

/// \brief Scans every segment of `dir` in sequence order, validating
/// frames (CRC, length), record schema, header identity agreement, and
/// LSN/segment contiguity.
///
/// A bad frame at the end of the *last* segment is a torn write: with
/// `repair_torn_tail` the file is truncated to its valid prefix (a last
/// segment with no valid header is deleted outright) and the scan
/// reports what was dropped; without it the scan fails with the same
/// record-precise status. A bad frame anywhere else is corruption and
/// always fails (InvalidArgument). An empty or missing directory yields
/// an empty scan, not an error.
Result<WalScan> ScanWalDir(const std::string& dir, bool repair_torn_tail);

/// \brief Appending journal writer. Not thread-safe (the replay loop
/// journals from its sequential dispatch path). Any IO failure poisons
/// the writer: further appends are refused, the on-disk journal stays a
/// valid prefix.
class WalWriter {
 public:
  /// Opens `dir` for appending: scans + repairs the existing journal
  /// (identity must match when segments exist) and starts a fresh
  /// segment after the last valid record. Metrics (may be null):
  /// tbf_wal_appends_total, tbf_wal_fsyncs_total, tbf_wal_bytes_total,
  /// tbf_wal_group_size, tbf_wal_rotations_total,
  /// tbf_wal_compacted_segments_total.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, const WalIdentity& identity,
      const WalFsyncPolicy& policy, obs::MetricRegistry* metrics);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, assigning `record->lsn`, and commits per the
  /// fsync policy. Fault site "wal.append" (hit-indexed by the LSN): a
  /// forced failure simulates a crash — the unflushed group is replaced
  /// by a deterministic torn prefix on disk and the writer is poisoned.
  Status Append(WalRecord* record);

  /// Writes and fsyncs everything buffered (a group-commit barrier; the
  /// checkpoint path calls this before recording wal_next_lsn).
  Status Sync();

  /// Syncs, closes the current segment and starts the next one (fault
  /// site "wal.rotate"). Called after every durable checkpoint so
  /// compaction works on whole segments.
  Status Rotate();

  /// Deletes segments whose every record has lsn < keep_from_lsn (never
  /// the active segment). Safe to call with the oldest retained
  /// checkpoint's wal_next_lsn.
  Status CompactBelow(uint64_t keep_from_lsn);

  /// Final sync + close; the destructor calls it best-effort.
  Status Close();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t segment_seq() const { return seq_; }
  const std::string& dir() const { return dir_; }

 private:
  WalWriter(std::string dir, WalIdentity identity, WalFsyncPolicy policy,
            obs::MetricRegistry* metrics);

  Status OpenSegment(uint64_t seq);
  Status Commit(bool do_fsync);
  void SimulateTornCrash(uint64_t lsn);

  std::string dir_;
  WalIdentity identity_;
  WalFsyncPolicy policy_;
  std::FILE* file_ = nullptr;
  uint64_t next_lsn_ = 0;
  uint64_t seq_ = 0;
  std::vector<WalSegmentInfo> segments_;  ///< retained, seq order
  std::string pending_;  ///< encoded frames not yet written
  size_t pending_records_ = 0;
  size_t records_since_fsync_ = 0;
  double group_opened_seconds_ = 0.0;  ///< monotonic time of first pending
  bool poisoned_ = false;
  bool closed_ = false;

  obs::Counter* appends_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* rotations_ = nullptr;
  obs::Counter* compacted_ = nullptr;
  obs::Histogram* group_size_ = nullptr;
};

}  // namespace tbf
