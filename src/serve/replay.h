// Event-time replay: drives the sharded serving engine from a timestamped
// worker/task arrival stream.
//
// The paper's interaction model is inherently online — workers and tasks
// arrive interleaved in time and every assignment is irrevocable — but
// the experiment pipelines (matching/runner.h) replay "all workers, then
// all tasks". This loop replays a real schedule instead:
//
//   1. Events are grouped into fixed event-time windows (epochs).
//   2. Each epoch's arrivals are obfuscated client-side through the
//      batched pipeline — code-native (TbfFramework::ObfuscateCodes, one
//      packed uint64 per report, sampler per TbfOptions::sampler) whenever
//      the tree fits 64-bit codes, else via ObfuscateBatch on LeafPaths.
//      Arrival i of the whole trace always draws from
//      ForkAt(obfuscation_seed stream, i), so reports are bit-identical
//      regardless of epoch length, thread count or shard count.
//   3. The obfuscated reports are dispatched into a ShardedTbfServer —
//      sequentially in event order (deterministic), or driven by one
//      lane per shard in parallel (parallel_dispatch). Tasks go to their
//      home shard's lane; all events of one worker share a lane, so each
//      worker's own arrival/departure order is preserved. Interleaving
//      *across* lanes is resolved by the engine's locks and is
//      scheduling-dependent.
//   4. Per-epoch privacy budgets roll over at every window boundary
//      (ShardedTbfServer::BeginEpoch -> EpochBudgetLedger).
//
// The report carries per-epoch stats plus every task's outcome, so a
// replay doubles as a measurement run (bench/serve_throughput.cc) and as
// a fixture for equivalence tests.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/tbf.h"
#include "hst/hst_index.h"
#include "obs/metrics.h"
#include "workload/instance.h"

namespace tbf {

/// \brief Configuration of one replay run.
struct ReplayOptions {
  /// Event-time window per epoch (> 0, seconds of trace time).
  double epoch_seconds = 60.0;

  /// Spatial shards of the serving engine (>= 1).
  int num_shards = 1;

  /// Thread-pool width for obfuscation and parallel dispatch
  /// (<= 0: all hardware threads).
  int threads = 1;

  /// When true, each epoch's events are dispatched by one lane per
  /// shard, concurrently (tasks by home shard; a worker's events all
  /// share one lane so their relative order holds). When false, events
  /// are dispatched one by one in event order — fully deterministic, and
  /// with canonical tie-breaking draw-for-draw identical to feeding a
  /// single TbfServer.
  bool parallel_dispatch = false;

  /// Per-user budget caps (see ShardedServerOptions). When either is set,
  /// the loop declares the framework's epsilon for every report.
  std::optional<double> lifetime_budget;
  std::optional<double> epoch_budget;

  /// Tie-breaking (kUniformRandom requires num_shards == 1).
  HstTieBreak tie_break = HstTieBreak::kCanonical;

  /// Seed of the engine's tie-breaking rng.
  uint64_t server_seed = 1;

  /// Seed of the client-side obfuscation stream.
  uint64_t obfuscation_seed = 11;
};

/// \brief Outcome of one task-arrival event, in task arrival order.
struct TaskOutcome {
  std::string task_id;
  Status status;  ///< admission result; OK even when no worker was free
  std::optional<std::string> worker;  ///< nullopt: unassigned
  double reported_tree_distance = 0.0;
};

/// \brief Per-epoch measurements. Counts (arrivals/assigned/denied/...)
/// are lane-counted by the loop itself, so they are exact and identical
/// whether metrics are on or off; the epsilon fields are deltas of the
/// engine ledger's always-on Totals across this epoch's dispatch.
struct EpochStats {
  int64_t epoch = 0;
  size_t worker_arrivals = 0;
  size_t task_arrivals = 0;
  size_t departures = 0;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;  ///< reports refused (budget caps)
  double obfuscate_seconds = 0.0;
  double dispatch_seconds = 0.0;

  /// Epsilon admitted within this epoch (0 when budgets are off).
  double epsilon_spent = 0.0;
  /// Reports refused by the per-epoch cap within this epoch.
  uint64_t denied_epoch_budget = 0;
  /// Reports refused by the lifetime cap within this epoch.
  uint64_t denied_lifetime_budget = 0;
};

/// \brief End-of-run counters of one engine shard (from the run's metric
/// registry; all zero when metrics are compiled out or disabled).
struct ShardReplayCounters {
  int shard = 0;
  uint64_t worker_arrivals = 0;  ///< successful (re)registrations routed here
  uint64_t departures = 0;       ///< successful unregistrations
  uint64_t tasks = 0;            ///< tasks whose home shard this is
  uint64_t assigned = 0;         ///< assignments consumed from this shard
};

/// \brief Aggregate measurements of a replay run.
struct ReplayReport {
  size_t events = 0;
  size_t worker_arrivals = 0;
  size_t task_arrivals = 0;
  size_t departures = 0;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;
  /// Departures of workers that were already assigned or gone (expected
  /// churn, not an error).
  size_t missed_departures = 0;
  size_t epochs = 0;

  double obfuscate_seconds = 0.0;
  double dispatch_seconds = 0.0;
  double wall_seconds = 0.0;      ///< obfuscation + dispatch, whole trace
  double events_per_second = 0.0; ///< events / wall_seconds

  size_t available_workers_end = 0;  ///< pool size after the last event

  // Flight-recorder view of the run. Each replay instruments a private
  // MetricRegistry (isolated from the process-wide one), so the latency
  // percentiles and per-shard counters below describe exactly this run.
  // Histogram percentiles carry the power-of-two bucket error bound (at
  // most a factor of 2); all of these are 0 when metrics are disabled.

  /// Per-task dispatch latency (ns): SubmitTask entry to resolution,
  /// from tbf_serve_dispatch_latency_ns.
  double dispatch_p50_ns = 0.0;
  double dispatch_p95_ns = 0.0;
  double dispatch_p99_ns = 0.0;

  /// Per-report client-side obfuscation latency (ns): the batched pass's
  /// wall time attributed evenly to its reports
  /// (tbf_replay_obfuscate_latency_ns).
  double obfuscate_p50_ns = 0.0;
  double obfuscate_p95_ns = 0.0;
  double obfuscate_p99_ns = 0.0;

  /// Tasks that probed beyond their home shard (boundary fan-outs).
  uint64_t crossshard_fanouts = 0;

  /// Whole-run privacy spend (ledger Totals; always on, exact).
  double epsilon_spent = 0.0;
  uint64_t denied_epoch_budget = 0;
  uint64_t denied_lifetime_budget = 0;

  /// One entry per engine shard, indexed by shard id.
  std::vector<ShardReplayCounters> per_shard;

  /// Final snapshot of the run's private registry (every tbf_serve_* and
  /// tbf_privacy_* series; see docs/OBSERVABILITY.md for the catalog).
  obs::MetricsSnapshot metrics;

  std::vector<EpochStats> per_epoch;
  std::vector<TaskOutcome> task_outcomes;  ///< task arrival order
};

/// \brief Replays `trace` against a fresh sharded engine built on
/// `framework`'s published tree. Events must be in nondecreasing time
/// order. The framework must outlive the call.
Result<ReplayReport> RunEventReplay(const TbfFramework& framework,
                                    const EventTrace& trace,
                                    const ReplayOptions& options = {});

}  // namespace tbf
