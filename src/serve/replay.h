// Event-time replay: drives the sharded serving engine from a timestamped
// worker/task arrival stream.
//
// The paper's interaction model is inherently online — workers and tasks
// arrive interleaved in time and every assignment is irrevocable — but
// the experiment pipelines (matching/runner.h) replay "all workers, then
// all tasks". This loop replays a real schedule instead:
//
//   1. Events are grouped into fixed event-time windows (epochs).
//   2. Each epoch's arrivals are obfuscated client-side through the
//      batched pipeline — code-native (TbfFramework::ObfuscateCodes, one
//      packed uint64 per report, sampler per TbfOptions::sampler) whenever
//      the tree fits 64-bit codes, else via ObfuscateBatch on LeafPaths.
//      Arrival i of the whole trace always draws from
//      ForkAt(obfuscation_seed stream, i), so reports are bit-identical
//      regardless of epoch length, thread count or shard count.
//   3. The obfuscated reports are dispatched into a ShardedTbfServer —
//      sequentially in event order (deterministic), or driven by one
//      lane per shard in parallel (parallel_dispatch). Tasks go to their
//      home shard's lane; all events of one worker share a lane, so each
//      worker's own arrival/departure order is preserved. Interleaving
//      *across* lanes is resolved by the engine's locks and is
//      scheduling-dependent.
//   4. Per-epoch privacy budgets roll over at every window boundary
//      (ShardedTbfServer::BeginEpoch -> EpochBudgetLedger).
//
// The report carries per-epoch stats plus every task's outcome, so a
// replay doubles as a measurement run (bench/serve_throughput.cc) and as
// a fixture for equivalence tests.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/tbf.h"
#include "hst/hst_index.h"
#include "obs/metrics.h"
#include "serve/sharded_server.h"
#include "serve/wal.h"
#include "workload/instance.h"

namespace tbf {

/// \brief What the replay loop does with a poison event — one whose
/// fields the loop cannot process (non-finite time or coordinates, time
/// regression, empty id).
enum class PoisonPolicy {
  /// Abort the run with InvalidArgument on the first poison event
  /// (historical behavior, the default).
  kFail,
  /// Quarantine it: record (event index, id, cause) in
  /// ReplayReport::quarantined_events, count it, and continue
  /// deterministically with the remaining events. Quarantined events
  /// consume no obfuscation draws, so the surviving events' reports are
  /// bit-identical to a trace that never contained the poison.
  kQuarantine,
};

/// \brief One scheduled live republish (see ReplayOptions::republishes).
struct ReplayRepublish {
  /// Event-time epoch at whose window start the swap runs (the first
  /// window with epoch >= at_epoch, so a schedule entry inside an empty
  /// window still fires).
  int64_t at_epoch = 0;
  /// The new tree; must match the framework tree's depth and arity.
  std::shared_ptr<const CompleteHst> tree;
};

/// \brief Configuration of one replay run.
struct ReplayOptions {
  /// Event-time window per epoch (> 0, seconds of trace time).
  double epoch_seconds = 60.0;

  /// Spatial shards of the serving engine (>= 1).
  int num_shards = 1;

  /// Thread-pool width for obfuscation and parallel dispatch
  /// (<= 0: all hardware threads).
  int threads = 1;

  /// When true, each epoch's events are dispatched by one lane per
  /// shard, concurrently (tasks by home shard; a worker's events all
  /// share one lane so their relative order holds). When false, events
  /// are dispatched one by one in event order — fully deterministic, and
  /// with canonical tie-breaking draw-for-draw identical to feeding a
  /// single TbfServer.
  bool parallel_dispatch = false;

  /// Per-user budget caps (see ShardedServerOptions). When either is set,
  /// the loop declares the framework's epsilon for every report.
  std::optional<double> lifetime_budget;
  std::optional<double> epoch_budget;

  /// Tie-breaking (kUniformRandom requires num_shards == 1).
  HstTieBreak tie_break = HstTieBreak::kCanonical;

  /// Seed of the engine's tie-breaking rng.
  uint64_t server_seed = 1;

  /// Seed of the client-side obfuscation stream.
  uint64_t obfuscation_seed = 11;

  /// Mechanism sampler for the client-side obfuscation pass; nullopt uses
  /// the framework's configured sampler (TbfOptions::sampler). A non-walk
  /// sampler (kInverseCdf, or the timing-oblivious kOblivious) requires a
  /// tree shape that fits packed codes. Like the seeds, the sampler is
  /// part of a run's identity: resuming a checkpointed run with a
  /// different sampler changes the obfuscation draw stream and is on the
  /// caller, exactly as rebuilding the framework differently would be.
  std::optional<SamplerKind> sampler;

  /// Poison-event handling (see PoisonPolicy).
  PoisonPolicy poison_policy = PoisonPolicy::kFail;

  /// Admission control and fan-out degradation, passed through to the
  /// engine (see ShardedServerOptions).
  size_t max_backlog_per_shard = 0;
  size_t degrade_fanout_inflight_threshold = 0;

  /// Crash-safe checkpoints: when nonempty, the loop writes an atomic
  /// (tmp + fsync + rename, CRC-framed) checkpoint of its full state to
  /// this path after every `checkpoint_every_epochs`-th epoch. A replay
  /// resumed from such a checkpoint continues draw-for-draw identically
  /// to the uninterrupted run (see docs/ROBUSTNESS.md).
  std::string checkpoint_path;
  int checkpoint_every_epochs = 1;

  /// Resume from `checkpoint_path` instead of starting at event 0. The
  /// trace, shard count, epoch length and seeds must match the
  /// checkpointed run (verified via fingerprints).
  bool resume_from_checkpoint = false;

  /// Durable serving (docs/ROBUSTNESS.md): when nonempty, the loop keeps
  /// a segmented write-ahead journal (serve/wal.h) plus periodic ordinal
  /// checkpoints `ckpt-<ordinal:08>.ckpt` in this directory. Every
  /// replay event is journaled *with the obfuscated report it carried
  /// and the outcome the engine produced*, so a crash anywhere is
  /// recoverable field-for-field (set `recover`). Requires sequential
  /// dispatch (the journal is an ordered log) and is mutually exclusive
  /// with `checkpoint_path` (the single-file legacy checkpoint).
  std::string durable_dir;

  /// Journal commit policy for durable runs (see WalFsyncPolicy):
  /// kEveryRecord survives power loss per record, kGroupCommit (default)
  /// loses at most one group, kNone survives process crashes only.
  WalFsyncPolicy wal_fsync;

  /// Durable checkpoints retained in `durable_dir`; older ones are
  /// deleted and the journal is compacted below the oldest survivor
  /// (>= 1; 2 keeps a fallback if the newest write is torn).
  int keep_checkpoints = 2;

  /// Crash-anywhere recovery: before replaying, scan `durable_dir`
  /// (serve/recovery.h) — restore the newest valid checkpoint, repair
  /// the journal's torn tail, re-apply the journal suffix through the
  /// engine, and re-enter the interrupted window skipping exactly the
  /// journaled work. A fresh (empty) directory starts a normal run.
  bool recover = false;

  /// Export the engine's full final state (worker registry, free-list
  /// order, RNG, ledger, tree epoch) into ReplayReport::final_state —
  /// the equivalence oracle of the crash drills.
  bool export_final_state = false;

  /// Scheduled live republishes: entry {at_epoch, tree} swaps the
  /// engine's published tree (ShardedTbfServer::Republish — zero
  /// downtime, live workers re-keyed) at the start of the first event
  /// window whose epoch is >= at_epoch, before that window's budget
  /// rollover and dispatch. Entries must be strictly increasing in
  /// at_epoch with non-null trees of the framework tree's shape. Like the
  /// seeds, the schedule is part of a run's identity: checkpoints record
  /// the engine's tree epoch, and resume fast-forwards the fresh engine
  /// through the already-applied prefix of this schedule before restoring
  /// state — resuming with a different schedule is on the caller.
  std::vector<ReplayRepublish> republishes;
};

/// \brief Outcome of one task-arrival event, in task arrival order.
struct TaskOutcome {
  std::string task_id;
  Status status;  ///< admission result; OK even when no worker was free
  std::optional<std::string> worker;  ///< nullopt: unassigned
  double reported_tree_distance = 0.0;
};

/// \brief Per-epoch measurements. Counts (arrivals/assigned/denied/...)
/// are lane-counted by the loop itself, so they are exact and identical
/// whether metrics are on or off; the epsilon fields are deltas of the
/// engine ledger's always-on Totals across this epoch's dispatch.
struct EpochStats {
  int64_t epoch = 0;
  size_t worker_arrivals = 0;
  size_t task_arrivals = 0;
  size_t departures = 0;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;  ///< reports refused (budget caps)
  double obfuscate_seconds = 0.0;
  double dispatch_seconds = 0.0;

  /// Epsilon admitted within this epoch (0 when budgets are off).
  double epsilon_spent = 0.0;
  /// Reports refused by the per-epoch cap within this epoch.
  uint64_t denied_epoch_budget = 0;
  /// Reports refused by the lifetime cap within this epoch.
  uint64_t denied_lifetime_budget = 0;

  /// Reports shed by admission control within this epoch.
  size_t shed = 0;
  /// Poison events quarantined within this epoch's window.
  size_t quarantined = 0;
};

/// \brief One quarantined poison event: where it sat in the trace and why
/// the loop refused to process it.
struct QuarantineRecord {
  uint64_t event_index = 0;  ///< index into EventTrace::events
  std::string id;            ///< the event's id ("" when that was the poison)
  std::string cause;         ///< human-readable reason
};

/// \brief End-of-run counters of one engine shard (from the run's metric
/// registry; all zero when metrics are compiled out or disabled).
struct ShardReplayCounters {
  int shard = 0;
  uint64_t worker_arrivals = 0;  ///< successful (re)registrations routed here
  uint64_t departures = 0;       ///< successful unregistrations
  uint64_t tasks = 0;            ///< tasks whose home shard this is
  uint64_t assigned = 0;         ///< assignments consumed from this shard
};

/// \brief Aggregate measurements of a replay run.
struct ReplayReport {
  size_t events = 0;
  size_t worker_arrivals = 0;
  size_t task_arrivals = 0;
  size_t departures = 0;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;
  /// Departures of workers that were already assigned or gone (expected
  /// churn, not an error).
  size_t missed_departures = 0;
  size_t epochs = 0;

  // Robustness accounting. Every event the loop attempts lands in exactly
  // one outcome bucket, so for any run (faults or not):
  //
  //   registered + assigned + unassigned + denied + shed + quarantined
  //     + departures_attempted == processed_events
  //
  // where departures_attempted = (successful departures) +
  // missed_departures, and processed_events = events - faults_dropped +
  // faults_duplicated - (still-quarantined events are counted in
  // processed_events too, as quarantine IS their outcome). The chaos
  // harness asserts this identity under every shipped fault plan.

  /// Worker registrations accepted by the engine.
  size_t registered = 0;
  /// Reports refused by admission control (ResourceExhausted).
  size_t shed = 0;
  /// Poison events quarantined instead of dispatched.
  size_t quarantined = 0;
  /// Events the loop handled (dispatched or quarantined):
  /// events - faults_dropped + faults_duplicated.
  size_t processed_events = 0;

  /// Stream mutations actually fired by the armed fault plan (all zero
  /// without one).
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_reordered = 0;
  uint64_t faults_stalled = 0;

  /// Checkpoints written by this run (resumed runs count only their own).
  uint64_t checkpoints_written = 0;
  /// True when this run resumed from a checkpoint.
  bool resumed = false;
  /// Journaled events re-applied by crash recovery (0 for fresh runs).
  uint64_t recovered_events = 0;
  /// Torn journal records dropped by the tail repair during recovery.
  uint64_t wal_truncated_records = 0;
  /// Scheduled republishes applied so far (resumed runs include the
  /// fast-forwarded prefix, so the count matches the uninterrupted run).
  uint64_t republishes = 0;

  double obfuscate_seconds = 0.0;
  double dispatch_seconds = 0.0;
  double wall_seconds = 0.0;      ///< obfuscation + dispatch, whole trace
  double events_per_second = 0.0; ///< events / wall_seconds

  size_t available_workers_end = 0;  ///< pool size after the last event

  // Flight-recorder view of the run. Each replay instruments a private
  // MetricRegistry (isolated from the process-wide one), so the latency
  // percentiles and per-shard counters below describe exactly this run.
  // Histogram percentiles carry the power-of-two bucket error bound (at
  // most a factor of 2); all of these are 0 when metrics are disabled.

  /// Per-task dispatch latency (ns): SubmitTask entry to resolution,
  /// from tbf_serve_dispatch_latency_ns.
  double dispatch_p50_ns = 0.0;
  double dispatch_p95_ns = 0.0;
  double dispatch_p99_ns = 0.0;

  /// Per-report client-side obfuscation latency (ns): the batched pass's
  /// wall time attributed evenly to its reports
  /// (tbf_replay_obfuscate_latency_ns).
  double obfuscate_p50_ns = 0.0;
  double obfuscate_p95_ns = 0.0;
  double obfuscate_p99_ns = 0.0;

  /// Tasks that probed beyond their home shard (boundary fan-outs).
  uint64_t crossshard_fanouts = 0;

  /// Whole-run privacy spend (ledger Totals; always on, exact).
  double epsilon_spent = 0.0;
  uint64_t denied_epoch_budget = 0;
  uint64_t denied_lifetime_budget = 0;

  /// One entry per engine shard, indexed by shard id.
  std::vector<ShardReplayCounters> per_shard;

  /// Final snapshot of the run's private registry (every tbf_serve_* and
  /// tbf_privacy_* series; see docs/OBSERVABILITY.md for the catalog).
  obs::MetricsSnapshot metrics;

  std::vector<EpochStats> per_epoch;
  std::vector<TaskOutcome> task_outcomes;  ///< task arrival order

  /// Poison events quarantined by this run, in trace order (empty unless
  /// poison_policy == kQuarantine).
  std::vector<QuarantineRecord> quarantined_events;

  /// Engine state after the last event (ReplayOptions::export_final_state).
  std::optional<ShardedServerState> final_state;
};

/// \brief Replays `trace` against a fresh sharded engine built on
/// `framework`'s published tree. Events must be in nondecreasing time
/// order. The framework must outlive the call.
Result<ReplayReport> RunEventReplay(const TbfFramework& framework,
                                    const EventTrace& trace,
                                    const ReplayOptions& options = {});

}  // namespace tbf
