// Crash-anywhere recovery supervisor.
//
// A durable replay run leaves two kinds of artifacts in its directory:
// periodic checkpoints `ckpt-<ordinal:08>.ckpt` (serve/checkpoint.h) and
// the segmented event journal `wal-<seq:08>.seg` (serve/wal.h). After a
// crash — mid-append, mid-fsync, mid-rotation, mid-checkpoint — recovery
// proceeds in three steps:
//
//   1. RecoverReplayDir picks the newest *valid* checkpoint. A checkpoint
//      that fails to read with a transient IOError is retried once with a
//      bounded backoff (RecoveryPolicy); one that fails to *parse*
//      (corruption) is rejected permanently and the supervisor falls back
//      to the next-newest. It then scans the journal, repairs the torn
//      tail (truncating at the first bad CRC / short frame with a
//      record-precise report), cross-checks the journal identity against
//      the checkpoint, and locates the replay suffix: the first journal
//      record with lsn >= the checkpoint's wal_next_lsn.
//   2. The caller restores the checkpoint into a fresh ShardedTbfServer
//      (the existing resume path), then ReplayWalSuffix re-applies the
//      journal suffix through the engine. Each dispatched record carries
//      the outcome the original run observed; the replayed outcome must
//      match field-for-field or recovery fails with a journal/state
//      divergence error rather than silently forking history.
//   3. ReplayWalSuffix also reconstructs, per event window touched by the
//      suffix, what the window had already completed (stage-1 quarantine
//      records, dispatched events, ledger charges) so the replay loop can
//      re-enter the window and skip exactly the journaled work.
//
// Metrics: tbf_recovery_attempts_total, tbf_recovery_checkpoints_rejected
// _total, tbf_recovery_io_retries_total, tbf_recovery_replayed_records
// _total, tbf_wal_recovered_events_total, tbf_wal_truncated_records_total.
// Fault site: "recovery.scan" fires on every checkpoint read attempt.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "hst/complete_hst.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/sharded_server.h"
#include "serve/wal.h"

namespace tbf {

/// \brief Bounded-retry policy for transient IO during recovery.
struct RecoveryPolicy {
  /// Total attempts per read (1 initial + retries). The issue ships
  /// retry-once: 2 attempts.
  int max_attempts = 2;
  /// Sleep between attempts. Small: the transient faults this guards
  /// against (NFS hiccup, overloaded disk) clear in milliseconds.
  double backoff_seconds = 0.005;
};

/// \brief `ckpt-<ordinal:08>.ckpt`.
std::string ReplayCheckpointFileName(uint64_t ordinal);

/// \brief One surviving, *valid* checkpoint file (retention candidate).
struct RetainedCheckpoint {
  uint64_t ordinal = 0;
  std::string path;
  uint64_t wal_next_lsn = 0;
};

/// \brief Everything RecoverReplayDir learned about a durable directory.
struct RecoveredRun {
  /// Newest valid checkpoint, if any survived.
  std::optional<ReplayCheckpoint> checkpoint;
  std::string checkpoint_path;  ///< "" when no checkpoint survived

  /// Every valid checkpoint, ordinal ascending (for retention/compaction:
  /// compaction must keep the journal back to the *oldest* retained
  /// checkpoint so a later recovery can still fall back to it).
  std::vector<RetainedCheckpoint> retained;

  uint64_t checkpoints_rejected = 0;  ///< corrupt files skipped
  uint64_t io_retries = 0;            ///< transient IO reads retried

  /// Journal scan after torn-tail repair.
  WalScan wal;
  /// Index into wal.records of the first record not covered by the
  /// checkpoint (== wal.records.size() when the checkpoint covers all).
  size_t suffix_begin = 0;
};

/// \brief Scans a durable replay directory: newest-valid checkpoint
/// selection (transient reads retried, corrupt files rejected with
/// fallback), journal scan + torn-tail repair, identity cross-checks,
/// suffix location. Fails (never silently drops events) when the journal
/// has a gap the surviving checkpoints cannot cover.
Result<RecoveredRun> RecoverReplayDir(const std::string& dir,
                                      const RecoveryPolicy& policy = {},
                                      obs::MetricRegistry* metrics = nullptr);

/// \brief What the journal proves one event window had already completed
/// before the crash. The replay loop re-enters the window and skips
/// exactly this much work (the outcomes below are the journaled ones, so
/// skipping re-dispatch cannot fork history — and cannot re-spend
/// privacy budget).
struct RecoveredWindow {
  int64_t epoch = 0;
  uint64_t begin_index = 0;          ///< first trace index of the window
  uint64_t arrivals_obfuscated = 0;  ///< ForkAt offset at window start
  int64_t next_task_slot = 0;        ///< report task slot at window start
  bool epoch_begun = false;  ///< BeginEpoch already applied (via journal)
  /// Stage-1 (pre-dispatch) records already journaled: quarantines and
  /// stream-fault bookkeeping, in journal order.
  size_t stage1_records = 0;
  /// Dispatched events already journaled (arrival/task/departure records
  /// with their outcomes), in dispatch order.
  std::vector<WalRecord> dispatched;
  /// Ledger deltas the journaled dispatches produced (per window).
  double epsilon_charged = 0.0;
  uint64_t denied_epoch = 0;
  uint64_t denied_lifetime = 0;
};

struct WalReplayResult {
  /// Windows the suffix touched, oldest first. The last one may be
  /// partial (the crash happened inside it).
  std::vector<RecoveredWindow> windows;
  uint64_t replayed_records = 0;  ///< journal records consumed
  uint64_t recovered_events = 0;  ///< dispatched events re-applied
};

/// \brief Re-applies `records[suffix_begin..]` through the engine:
/// BeginEpoch at window markers, registration/submission/unregistration
/// with the *journaled* obfuscated reports, republishes fast-forwarded
/// from `republishes` (the run's schedule). Verifies every replayed
/// outcome against the journaled one; any divergence (status code,
/// assigned worker, tree distance, ledger charge) is an Internal error —
/// the journal and the engine disagree and recovery must not guess.
/// Records whose outcome is `forced` (an injected pre-engine denial)
/// are counted but not re-applied.
Result<WalReplayResult> ReplayWalSuffix(
    ShardedTbfServer* server, const std::vector<WalRecord>& records,
    size_t suffix_begin, const std::vector<std::shared_ptr<const CompleteHst>>& republish_trees,
    obs::MetricRegistry* metrics = nullptr);

/// \brief ReadHstSnapshotFile with the recovery retry policy: a transient
/// IOError (file vanished mid-read, open refused) is retried up to
/// policy.max_attempts with backoff; a parse error (corruption) fails
/// fast. `io_retries`, when non-null, is incremented per retry.
Result<CompleteHst> ReadHstSnapshotFileWithRetry(
    const std::string& path, const RecoveryPolicy& policy = {},
    uint64_t* io_retries = nullptr);

}  // namespace tbf
