// ShardedTbfServer — the sharded, epoch-aware online serving engine.
//
// TbfServer processes one global availability index single-threaded. This
// engine partitions the leaf space into K spatial shards by leaf-code
// prefix (serve/shard_router.h); each shard owns its own
// HstAvailabilityIndex behind its own mutex (a striped lock over the leaf
// space), so event streams touching different subtrees proceed in
// parallel.
//
// Nearest-worker resolution stays *globally exact*: a task first probes
// its home shard only, and commits immediately when the candidate's LCA
// level is at or below the router's cutoff (no other shard can hold a
// strictly nearer worker — see shard_router.h for the proof sketch). Only
// tasks near a shard boundary — home subtree empty up to the prefix
// levels — fan out, locking all shards in ascending order and taking the
// canonical minimum across the per-shard candidates. Because the
// canonical order (LCA level, leaf path, index id) is a total order that
// partitioning preserves, the sharded engine reproduces the single-index
// engine's choices *exactly*: driven sequentially with canonical
// tie-breaking, any K produces draw-for-draw the same assignments as
// TbfServer (enforced by tests/serve/sharded_server_test.cc).
//
// Shards share one worker registry and one index-id pool (pool_mu_),
// mirroring TbfServer's id recycling bit for bit — that shared pool is
// what makes the equivalence hold even through churn, and its critical
// sections are a few map/vector operations, orders of magnitude cheaper
// than an index query.
//
// Epoch budgets: on top of TbfServer's lifetime cap, the engine can
// rate-limit per-user spend per event-time epoch (EpochBudgetLedger);
// BeginEpoch rolls accounting forward (the replay loop drives this from
// event time, serve/replay.h).
//
// Lock order (deadlock freedom): budget_mu_ alone; otherwise shard
// mutexes in ascending shard id, then pool_mu_. Uniform-random
// tie-breaking needs one global draw sequence and is therefore only
// supported at K = 1 (Create refuses otherwise).

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/server.h"
#include "hst/complete_hst.h"
#include "hst/hst_index.h"
#include "obs/metrics.h"
#include "privacy/budget.h"
#include "serve/republish.h"
#include "serve/shard_router.h"

namespace tbf {

/// \brief Configuration of the sharded serving engine.
struct ShardedServerOptions {
  /// Spatial shards (>= 1; at most arity^depth). 1 reproduces TbfServer.
  int num_shards = 1;

  /// Per-user lifetime epsilon cap (TbfServer semantics).
  std::optional<double> lifetime_budget;

  /// Per-user per-epoch epsilon cap; epochs advance via BeginEpoch. When
  /// either budget is set, every report must declare its epsilon.
  std::optional<double> epoch_budget;

  /// Tie-breaking; kUniformRandom requires num_shards == 1.
  HstTieBreak tie_break = HstTieBreak::kCanonical;

  /// Seed for randomized tie-breaking.
  uint64_t seed = 1;

  /// Admission control: maximum in-flight operations per shard (0 =
  /// unbounded). An operation arriving at a shard whose backlog is full is
  /// *shed* — refused with ResourceExhausted before any budget charge, and
  /// counted in tbf_robustness_shed_total — instead of queueing without
  /// bound behind the shard mutex.
  size_t max_backlog_per_shard = 0;

  /// Graceful degradation of cross-shard fan-out: when > 0 and the total
  /// in-flight operation count reaches this threshold, a boundary task
  /// resolves against its home shard only (approximate nearest instead of
  /// a full K-shard lock sweep), counted in
  /// tbf_robustness_degraded_fanouts_total — never silent. 0 = always
  /// exact. A threshold of 1 degrades every fan-out deterministically
  /// (useful for tests; any single-threaded driver always has exactly one
  /// operation in flight).
  size_t degrade_fanout_inflight_threshold = 0;

  /// Registry receiving the engine's tbf_serve_* series (and the
  /// ledger's tbf_privacy_* series when budgets are on); nullptr uses
  /// the process-wide registry. Must outlive the server. The replay loop
  /// passes a per-run registry so interval deltas are isolated.
  obs::MetricRegistry* metrics = nullptr;
};

/// \brief Full serializable state of a ShardedTbfServer (crash-safe replay
/// checkpoints). Everything is exported in a deterministic order (workers
/// sorted by id) so serialization is byte-stable.
struct ShardedServerState {
  struct Worker {
    std::string id;
    uint64_t code = 0;        ///< packed report (packed mode)
    std::string leaf_digits;  ///< "d0.d1...." (path mode)
    int index_id = -1;
    int shard = -1;
  };

  bool packed = false;
  uint64_t assigned_tasks = 0;
  uint64_t tree_epoch = 0;  ///< republishes applied (published-tree version)
  std::string rng_state;                     ///< Rng::SerializeState
  std::vector<std::string> worker_by_index_id;  ///< "" = free slot
  std::vector<int> free_index_ids;           ///< recycling order matters
  std::vector<Worker> workers;               ///< sorted by id
  std::optional<EpochBudgetLedger::State> ledger;
};

/// \brief Sharded online dispatch server on obfuscated leaves.
///
/// Thread-safe: registrations, submissions and departures may be issued
/// concurrently from any number of threads. Concurrent operations
/// linearize in some order consistent with per-shard arrival; driven from
/// a single thread the engine is fully deterministic.
class ShardedTbfServer {
 public:
  static Result<std::unique_ptr<ShardedTbfServer>> Create(
      std::shared_ptr<const CompleteHst> tree,
      const ShardedServerOptions& options = {});

  /// \brief Registers (or relocates) a worker at an obfuscated leaf.
  /// Budget semantics match TbfServer: the charge happens first, and a
  /// refused charge leaves any previous registration untouched.
  Status RegisterWorker(const std::string& worker_id, const LeafPath& leaf,
                        std::optional<double> declared_epsilon = std::nullopt);

  /// \brief Code-native registration (TbfServer contract): the report is
  /// a packed LeafCode and stays packed through routing, locking and the
  /// per-shard trie. Fails when the tree has no codec.
  Status RegisterWorker(const std::string& worker_id, LeafCode code,
                        std::optional<double> declared_epsilon = std::nullopt);

  /// \brief Removes an available worker from the pool.
  Status UnregisterWorker(const std::string& worker_id);

  /// \brief True when `worker_id` is currently registered and available.
  bool IsRegistered(const std::string& worker_id) const;

  /// \brief Submits a task; assigns and consumes the globally nearest
  /// available worker (exact, across all shards).
  Result<DispatchResult> SubmitTask(const std::string& task_id,
                                    const LeafPath& leaf,
                                    std::optional<double> declared_epsilon =
                                        std::nullopt);

  /// \brief Code-native submission (see the code RegisterWorker overload).
  Result<DispatchResult> SubmitTask(const std::string& task_id, LeafCode code,
                                    std::optional<double> declared_epsilon =
                                        std::nullopt);

  /// \brief Batch wrappers, item semantics identical to the single-call
  /// API (TbfServer contract). Items are issued sequentially by the
  /// calling thread; parallelism comes from *concurrent* callers (the
  /// replay loop drives one caller per shard).
  std::vector<Status> RegisterWorkers(const std::vector<LeafReport>& batch);
  std::vector<BatchDispatchOutcome> SubmitTasks(
      const std::vector<LeafReport>& batch);

  /// \brief Code-native batch spans (pair with ObfuscateCodes).
  std::vector<Status> RegisterWorkers(std::span<const LeafCodeReport> batch);
  std::vector<BatchDispatchOutcome> SubmitTasks(
      std::span<const LeafCodeReport> batch);

  /// \brief Rolls per-epoch budget accounting forward to `epoch` (no-op
  /// without an epoch budget; going backwards fails).
  Status BeginEpoch(int64_t epoch);

  /// \brief Atomically swaps the published tree for `new_tree` while the
  /// engine keeps serving — zero downtime, no dropped operation.
  ///
  /// `new_tree` must have the published shape (same depth and arity):
  /// live reports, shard routing and packed codes are all expressed in
  /// the published geometry, so republishing is re-learning the partition
  /// over the same grid, not changing the grid. The scale and point set
  /// may differ freely.
  ///
  /// Every live worker's stored report is re-keyed old-tree -> new-tree:
  /// a report sitting on a *real* leaf follows its predefined point
  /// through CompleteHst::MapToNearestLeafCode on the new tree; a report
  /// on a *fake* leaf (obfuscation can land there) keeps its digits
  /// verbatim — which is exactly what makes a republish of a bit-identical
  /// tree draw-for-draw equivalent to not republishing at all.
  ///
  /// Two phases: re-keying runs in batches outside the locks against a
  /// stable old tree (concurrent traffic proceeds); the flip then takes
  /// every shard mutex plus the pool, rebuilds the per-shard indexes and
  /// publishes the new tree. Fault sites "republish.rekey" (hit-indexed
  /// by batch ordinal) and "republish.swap" (hit-indexed by the current
  /// tree epoch, firing before any mutation) abort cleanly: a failed
  /// republish leaves the engine exactly as it was. Concurrent Republish
  /// calls serialize.
  Result<RepublishReport> Republish(std::shared_ptr<const CompleteHst> new_tree,
                                    const RepublishOptions& options = {});

  /// Number of republishes applied so far (0 for the construction tree).
  uint64_t tree_epoch() const {
    return tree_epoch_.load(std::memory_order_acquire);
  }

  /// Number of workers currently available for assignment.
  size_t available_workers() const {
    return available_.load(std::memory_order_relaxed);
  }

  /// Total tasks assigned so far.
  size_t assigned_tasks() const {
    return assigned_tasks_.load(std::memory_order_relaxed);
  }

  /// \brief Size of the shared index-id pool (bounded by the peak pool
  /// size, as in TbfServer — ids recycle through one free list across all
  /// shards).
  size_t index_id_pool_size() const;

  /// Workers currently held by shard `shard` (monitoring).
  size_t shard_size(int shard) const;

  int num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }

  /// The currently published tree. References stay valid for the
  /// server's lifetime even across Republish (superseded trees are
  /// retained), but after a republish this accessor returns the *new*
  /// tree — snapshot tree_shared() when you need one stable tree object.
  const CompleteHst& tree() const {
    return *tree_ptr_.load(std::memory_order_acquire);
  }

  /// Shared ownership of the currently published tree.
  std::shared_ptr<const CompleteHst> tree_shared() const;

  /// The epoch/lifetime ledger, when budgeting is enabled (else nullptr).
  /// Synchronize externally with concurrent operations before reading.
  const EpochBudgetLedger* ledger() const { return ledger_.get(); }

  /// The registry this engine's tbf_serve_* metrics land in (see
  /// docs/OBSERVABILITY.md for the catalog).
  obs::MetricRegistry* metrics() const { return metrics_; }

  /// Operations shed by per-shard admission control so far.
  uint64_t shed_operations() const {
    return shed_operations_.load(std::memory_order_relaxed);
  }

  /// Boundary fan-outs resolved home-shard-only under pressure so far.
  uint64_t degraded_fanouts() const {
    return degraded_fanouts_.load(std::memory_order_relaxed);
  }

  /// \brief Snapshot of the engine's full mutable state, deterministic
  /// byte-for-byte for a quiescent engine. Do not call concurrently with
  /// operations.
  ShardedServerState ExportState() const;

  /// \brief Restores a state exported by ExportState into a freshly
  /// created engine with identical construction options (tree, shard
  /// count, budgets). After restore, the engine continues draw-for-draw
  /// as the exported one would have. Do not call concurrently with
  /// operations; fails (leaving the engine unusable for determinism
  /// purposes) on inconsistent input.
  Status RestoreState(const ShardedServerState& state);

 private:
  struct Shard {
    Shard(int depth, int arity) : index(depth, arity) {}
    mutable std::mutex mu;
    HstAvailabilityIndex index;
  };

  // When the published tree has a codec the engine stores, routes and
  // indexes workers by packed LeafCode only (LeafPath reports pack once at
  // the boundary); `leaf` is used solely on codec-less trees.
  struct WorkerState {
    LeafCode code = 0;
    LeafPath leaf;
    int index_id = -1;
    int shard = -1;
  };

  // A candidate assignment discovered in some shard's index.
  struct Candidate {
    int shard;
    int index_id;
    int lca_level;
  };

  ShardedTbfServer(std::shared_ptr<const CompleteHst> tree,
                   const ShardedServerOptions& options);

  Status ChargeIfRequired(const std::string& user,
                          std::optional<double> declared_epsilon);

  // Shared id pool, guarded by pool_mu_ (TbfServer's exact recycling).
  int AcquireIndexId(const std::string& worker_id);
  void ReleaseIndexId(int index_id);

  // Shared cores over the report key type (LeafCode in packed mode,
  // LeafPath otherwise); both instantiations live in the .cc. The
  // canonical total order is the same either way — unsigned LeafCode
  // comparison is lexicographic digit comparison — so any mix of entry
  // points produces identical assignments. The caller has already
  // validated the report.
  template <typename Key>
  Status RegisterImpl(const std::string& worker_id, const Key& key,
                      std::optional<double> declared_epsilon);
  template <typename Key>
  Result<DispatchResult> SubmitImpl(const std::string& task_id, const Key& key,
                                    std::optional<double> declared_epsilon);

  // Queries shard `shard` (its mutex must be held). Uses rng_ for
  // uniform-random tie-breaking (K == 1 only, so the shard mutex also
  // serializes the rng).
  template <typename Key>
  std::optional<std::pair<int, int>> QueryShard(int shard, const Key& key);

  // Consumes `candidate` as the assignment of one task. Its shard's mutex
  // must be held; takes pool_mu_ internally.
  DispatchResult ConsumeCandidate(const Candidate& candidate);

  // Republish core over the report key type (see RegisterImpl); the
  // caller holds republish_mu_ and has validated the new tree's shape.
  template <typename Key>
  Result<RepublishReport> RepublishImpl(
      std::shared_ptr<const CompleteHst> new_tree,
      const RepublishOptions& options);

  ShardedServerOptions options_;
  ShardRouter router_;
  Rng rng_;
  bool packed_ = false;  // tree()->codec() != nullptr (invariant: shape,
                         // and hence codec-ness, never changes — Republish
                         // requires the published depth and arity)

  // The published tree. tree_ptr_ is the lock-free read path (entry-point
  // validation, packing, distance reporting); tree_history_ owns every
  // tree ever published, so references handed out by tree() stay valid
  // across republishes for the server's whole lifetime. The flip happens
  // under ALL shard mutexes + pool_mu_ (so in-flight operations never
  // straddle it) + tree_mu_; tree_epoch_ counts flips. republish_mu_
  // serializes whole Republish calls so re-keying always runs against a
  // stable old tree.
  mutable std::mutex tree_mu_;
  std::vector<std::shared_ptr<const CompleteHst>> tree_history_;
  std::atomic<const CompleteHst*> tree_ptr_{nullptr};
  std::atomic<uint64_t> tree_epoch_{0};
  std::mutex republish_mu_;

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex pool_mu_;
  std::unordered_map<std::string, WorkerState> workers_;
  std::vector<std::string> worker_by_index_id_;
  std::vector<int> free_index_ids_;

  mutable std::mutex budget_mu_;
  std::unique_ptr<EpochBudgetLedger> ledger_;

  std::atomic<size_t> available_{0};
  std::atomic<size_t> assigned_tasks_{0};

  // Load tracking for admission control and fan-out degradation: in-flight
  // operation counts, incremented on entry to a (Register|Submit|
  // Unregister)Impl and decremented on exit (relaxed; advisory pressure
  // signals, not synchronization).
  std::vector<std::unique_ptr<std::atomic<size_t>>> shard_inflight_;
  std::atomic<size_t> total_inflight_{0};
  std::atomic<uint64_t> shed_operations_{0};
  std::atomic<uint64_t> degraded_fanouts_{0};

  // Metrics handles (resolved once at construction; mutations on the hot
  // path are striped relaxed atomics, compiled out under
  // TBF_METRICS_DISABLED). Per-shard vectors are indexed by shard id.
  obs::MetricRegistry* metrics_ = nullptr;
  std::vector<obs::Counter*> shard_arrivals_metric_;
  std::vector<obs::Counter*> shard_departures_metric_;
  std::vector<obs::Counter*> shard_tasks_metric_;
  std::vector<obs::Counter*> shard_assigned_metric_;
  obs::Counter* unassigned_metric_ = nullptr;
  obs::Counter* denied_metric_ = nullptr;
  obs::Counter* fanout_metric_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* degraded_fanout_metric_ = nullptr;
  obs::Histogram* dispatch_latency_metric_ = nullptr;
  obs::Histogram* lock_wait_metric_ = nullptr;
  obs::Gauge* available_metric_ = nullptr;
  obs::Counter* republish_started_metric_ = nullptr;
  obs::Counter* republish_rekeyed_metric_ = nullptr;
  obs::Counter* republish_swapped_metric_ = nullptr;
  obs::Counter* republish_aborted_metric_ = nullptr;
  obs::Gauge* tree_epoch_metric_ = nullptr;
};

}  // namespace tbf
