#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

namespace tbf {

Result<std::vector<int>> SolveMinCostAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) return std::vector<int>{};
  const int cols = static_cast<int>(cost[0].size());
  if (cols < rows) {
    return Status::InvalidArgument("need at least as many columns as rows");
  }
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != cols) {
      return Status::InvalidArgument("ragged cost matrix");
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-based arrays, the classic potentials formulation: u/v are row/col
  // potentials, way[] is the augmenting-path parent pointer.
  std::vector<double> u(static_cast<size_t>(rows) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(cols) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(cols) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(cols) + 1, 0);

  for (int r = 1; r <= rows; ++r) {
    match[0] = r;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(cols) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(cols) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      int r0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = cost[static_cast<size_t>(r0) - 1][static_cast<size_t>(j) - 1] -
                     u[static_cast<size_t>(r0)] - v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    // Unwind the augmenting path.
    do {
      int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(static_cast<size_t>(rows), -1);
  for (int j = 1; j <= cols; ++j) {
    if (match[static_cast<size_t>(j)] > 0) {
      row_to_col[static_cast<size_t>(match[static_cast<size_t>(j)]) - 1] = j - 1;
    }
  }
  return row_to_col;
}

Result<Matching> OptimalMatching(const std::vector<Point>& tasks,
                                 const std::vector<Point>& workers) {
  if (tasks.size() > workers.size()) {
    return Status::InvalidArgument("more tasks than workers");
  }
  std::vector<std::vector<double>> cost(tasks.size(),
                                        std::vector<double>(workers.size()));
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (size_t w = 0; w < workers.size(); ++w) {
      cost[t][w] = EuclideanDistance(tasks[t], workers[w]);
    }
  }
  TBF_ASSIGN_OR_RETURN(std::vector<int> row_to_col, SolveMinCostAssignment(cost));
  Matching matching;
  matching.pairs.reserve(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    matching.pairs.push_back({static_cast<int>(t), row_to_col[t]});
  }
  return matching;
}

}  // namespace tbf
