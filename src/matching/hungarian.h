// Offline minimum-cost bipartite matching (Hungarian algorithm with
// potentials, Jonker-Volgenant style).
//
// Not part of the paper's online protocol: OPT is the denominator of the
// competitive ratio (Def. 8). The ablation bench measures empirical
// CR = E[d(M_A)] / d(M_OPT) against this solver.

#pragma once

#include <vector>

#include "common/result.h"
#include "geo/point.h"
#include "matching/types.h"

namespace tbf {

/// \brief Solves min-cost assignment of all rows to distinct columns.
///
/// `cost` is rows x cols with rows <= cols; entry [r][c] >= 0. Returns, for
/// each row, the column it is matched to. O(rows^2 * cols).
Result<std::vector<int>> SolveMinCostAssignment(
    const std::vector<std::vector<double>>& cost);

/// \brief Optimal offline matching of every task to a distinct worker under
/// true Euclidean distances (requires #tasks <= #workers).
Result<Matching> OptimalMatching(const std::vector<Point>& tasks,
                                 const std::vector<Point>& workers);

}  // namespace tbf
