// Online greedy matching in the Euclidean plane (Tong et al., PVLDB 2016) —
// the matcher inside the Lap-GR baseline: each arriving task takes the
// nearest unmatched worker by (reported) Euclidean distance.

#pragma once

#include <memory>
#include <vector>

#include "geo/kdtree.h"
#include "geo/point.h"

namespace tbf {

/// \brief Search engine for the greedy scan.
enum class GreedyEngine {
  kLinearScan,  ///< O(n) per task — the complexity the paper reports
  kKdTree,      ///< O(log n) expected per task (library extension)
};

/// \brief Stateful online matcher over a fixed set of reported worker
/// locations; each Assign consumes the returned worker.
class GreedyEuclidMatcher {
 public:
  /// `workers` are the *reported* (obfuscated) worker locations.
  explicit GreedyEuclidMatcher(std::vector<Point> workers,
                               GreedyEngine engine = GreedyEngine::kLinearScan);

  /// \brief Assigns the nearest available worker to a task reported at
  /// `task`; returns its id, or -1 when no worker remains. Ties break
  /// toward the smaller worker id (deterministic across engines).
  int Assign(const Point& task);

  size_t available() const { return available_count_; }

 private:
  GreedyEngine engine_;
  std::vector<Point> workers_;
  std::vector<bool> taken_;
  size_t available_count_;
  std::unique_ptr<KdTree> index_;  // only for kKdTree
};

}  // namespace tbf
