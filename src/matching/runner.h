// End-to-end pipelines for every algorithm the paper compares (Sec. IV):
//
//   Lap-GR  planar Laplace + Euclidean greedy            [baseline 1]
//   Lap-HG  planar Laplace + HST-Greedy                  [baseline 2]
//   TBF     HST mechanism + HST-Greedy                   [the paper]
//   NoPriv  identity mechanism + Euclidean greedy        [extension: floor]
//   OPT     offline Hungarian on true locations          [CR denominator]
//
// and the matching-size case study (Sec. IV-C):
//
//   Prob    planar Laplace + probability ranking          [To et al.]
//   TBF-CS  HST mechanism + nearest-reachable-on-tree
//
// Each pipeline reports the paper's three metrics: total true distance (or
// matching size), total assignment running time, and peak memory.

#pragma once

#include <string>

#include "common/result.h"
#include "matching/greedy_euclid.h"
#include "matching/hst_greedy.h"
#include "matching/types.h"
#include "workload/instance.h"

namespace tbf {

/// \brief Algorithms of the total-distance experiments.
enum class Algorithm {
  kLapGr,
  kLapHg,
  kTbf,
  kNoPrivacyGreedy,
  kOfflineOptimal,
  /// Ablation baseline: discrete exponential mechanism over the same
  /// predefined grid TBF uses + Euclidean greedy — discretization without
  /// the tree (see privacy/exponential.h).
  kExpGr,
};

/// \brief Display name ("Lap-GR", "Lap-HG", "TBF", ...).
const char* AlgorithmName(Algorithm algorithm);

/// \brief Shared pipeline configuration.
struct PipelineConfig {
  /// Privacy budget (Geo-I, per metric unit of the instance's region —
  /// note the paper uses the same numeric range for both spaces).
  /// Default 0.2: the strict end of Table II/III, the regime in which the
  /// paper's headline savings (up to 80-88%) are reported.
  double epsilon = 0.2;

  /// Master seed; obfuscation, tree construction and tie-breaking derive
  /// independent streams from it.
  uint64_t seed = 7;

  /// Predefined point set = grid_side x grid_side uniform grid over the
  /// instance region (N = grid_side^2 on the published HST).
  int grid_side = 32;

  /// Engines (paper complexity by default; index/kd-tree as extensions).
  GreedyEngine greedy_engine = GreedyEngine::kLinearScan;
  HstEngine hst_engine = HstEngine::kLinearScan;

  /// Clamp Laplace-obfuscated reports back into the region (practical
  /// post-processing; Geo-I preserved).
  bool clamp_laplace = true;

  /// Threads for the batched obfuscation stage (<= 0: all hardware
  /// threads). Results are bit-identical for every thread count: item i
  /// always draws from the same Rng::ForkAt(i) stream. Assignment itself
  /// stays sequential — it is an online process.
  int threads = 0;

  /// TBF only: when > 0, dispatch through the sharded serving engine
  /// (serve/sharded_server.h) with this many spatial shards instead of
  /// the in-process HstGreedyMatcher. Driven sequentially here, so any
  /// shard count produces the identical matching (tested); the knob
  /// exists to exercise and measure the serving path inside the standard
  /// pipeline harness.
  int serve_shards = 0;
};

/// \brief Measurements of one pipeline run.
struct RunMetrics {
  std::string algorithm;
  double total_distance = 0.0;  ///< true Euclidean, matched pairs only
  size_t matched = 0;
  double build_seconds = 0.0;      ///< server setup (HST construction etc.)
  double obfuscate_seconds = 0.0;  ///< client-side reporting
  double match_seconds = 0.0;      ///< paper's "running time": task arrival
                                   ///< to assignment, summed over tasks
  double memory_mb = 0.0;          ///< peak RSS while running (MiB)
  /// Per-task assignment latency (the paper's "each task can be responded
  /// in x seconds" claims): mean and worst case over all tasks.
  double avg_assign_seconds = 0.0;
  double max_assign_seconds = 0.0;

  /// \brief Fine-grained wall-clock breakdown of the pipeline stages.
  /// obfuscate_seconds above remains the whole client-reporting stage
  /// (map + mechanism); these split it and record the parallelism used.
  struct StageBreakdown {
    double map_seconds = 0.0;        ///< nearest-predefined-point mapping
    double obfuscate_seconds = 0.0;  ///< mechanism draws only
    double assign_seconds = 0.0;     ///< sequential online assignment
    int threads = 1;                 ///< pool width of the batched stages
    size_t batch_items = 0;          ///< workers + tasks obfuscated
    int shards = 1;                  ///< serving-engine shards (1: matcher)
  };
  StageBreakdown stages;

  Matching matching;  ///< the actual assignment
};

/// \brief Runs one algorithm on an OMBM instance.
Result<RunMetrics> RunPipeline(Algorithm algorithm, const OnlineInstance& instance,
                               const PipelineConfig& config);

/// \brief Case-study algorithms (matching-size objective).
enum class CaseStudyAlgorithm {
  kProb,
  kTbf,
};

const char* CaseStudyAlgorithmName(CaseStudyAlgorithm algorithm);

/// \brief Case-study configuration: pipeline settings plus the notification
/// protocol bound (see DESIGN.md "Case-study semantics").
struct CaseStudyConfig {
  PipelineConfig pipeline;
  /// Workers notified per task before it goes unassigned. Default 1 (a
  /// single dispatch per task): the regime that reproduces the paper's
  /// Fig. 8 gaps; larger values let every ranking strategy converge to the
  /// same ceiling.
  size_t max_notifications = 1;
};

/// \brief Measurements of one case-study run.
struct CaseStudyMetrics {
  std::string algorithm;
  size_t matching_size = 0;     ///< tasks accepted by a reachable worker
  size_t notifications = 0;     ///< total workers notified
  double build_seconds = 0.0;
  double obfuscate_seconds = 0.0;
  double match_seconds = 0.0;
  double memory_mb = 0.0;
};

/// \brief Runs one case-study algorithm on a reachability instance.
Result<CaseStudyMetrics> RunCaseStudy(CaseStudyAlgorithm algorithm,
                                      const CaseStudyInstance& instance,
                                      const CaseStudyConfig& config);

}  // namespace tbf
