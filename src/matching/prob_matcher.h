// Prob — the baseline of the matching-size case study (Sec. IV-C), after
// To, Shahabi, Xiong: "Privacy-Preserving Online Task Assignment in Spatial
// Crowdsourcing with Untrusted Server" (ICDE 2018).
//
// Workers and tasks report planar-Laplace-obfuscated locations. For an
// arriving task the server estimates, for each available worker, the
// probability that the *true* distance is within the worker's reachable
// radius given the *observed* distance, and notifies workers in decreasing
// probability order until one accepts. The probability has no closed form
// (difference of two planar Laplace noises); as in the original paper's
// implementation it is estimated by Monte Carlo, here tabulated once and
// bilinearly interpolated.
//
// The matching-size variant of TBF ranks candidates by HST distance instead
// (HstCaseStudyMatcher); both run under the same notification protocol.

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geo/point.h"
#include "hst/hst_index.h"
#include "hst/leaf_path.h"

namespace tbf {

/// \brief Tabulated estimate of Pr[true distance <= R | observed distance],
/// where both endpoints carry independent planar Laplace noise at `epsilon`.
class ReachabilityTable {
 public:
  /// \param epsilon planar Laplace budget of both endpoints
  /// \param max_observed_distance table domain for the observed distance
  /// \param min_radius,max_radius table domain for the reachable radius
  /// \param rng Monte-Carlo sampling stream
  /// \param mc_samples noise-difference samples shared by all cells
  /// \param distance_bins,radius_bins table resolution
  ReachabilityTable(double epsilon, double max_observed_distance,
                    double min_radius, double max_radius, Rng* rng,
                    int mc_samples = 4096, int distance_bins = 160,
                    int radius_bins = 12);

  /// \brief Interpolated probability estimate; arguments are clamped to the
  /// table domain.
  double Probability(double observed_distance, double radius) const;

  double epsilon() const { return epsilon_; }

 private:
  double CellValue(double observed_distance, double radius,
                   const std::vector<Point>& noise_diffs) const;

  double epsilon_;
  double max_distance_;
  double min_radius_;
  double max_radius_;
  int distance_bins_;
  int radius_bins_;
  std::vector<double> table_;  // (distance_bins+1) x (radius_bins+1), row-major
};

/// \brief The Prob online matcher: ranks available workers by estimated
/// reachability probability.
class ProbMatcher {
 public:
  /// `workers` are reported (obfuscated) locations; `radii` the reachable
  /// radii (public, as in the case study setup).
  ProbMatcher(std::vector<Point> workers, std::vector<double> radii,
              std::shared_ptr<const ReachabilityTable> table);

  /// \brief Up to `limit` available workers in decreasing estimated
  /// reachability for a task reported at `task`. Workers with estimated
  /// probability 0 are omitted.
  std::vector<int> Candidates(const Point& task, size_t limit) const;

  /// \brief Marks a worker as consumed (accepted a task).
  void Consume(int worker_id);

  size_t available() const { return available_count_; }

 private:
  std::vector<Point> workers_;
  std::vector<double> radii_;
  std::vector<bool> taken_;
  size_t available_count_;
  std::shared_ptr<const ReachabilityTable> table_;
};

/// \brief TBF's matching-size variant: ranks available workers by HST
/// distance to the reported task leaf (nearest reachable worker on the
/// tree, Sec. IV-C).
class HstCaseStudyMatcher {
 public:
  HstCaseStudyMatcher(std::vector<LeafPath> workers, int depth, int arity);

  /// Up to `limit` available workers in non-decreasing tree distance.
  std::vector<int> Candidates(const LeafPath& task, size_t limit) const;

  void Consume(int worker_id);

  size_t available() const { return index_.size(); }

 private:
  std::vector<LeafPath> workers_;
  HstAvailabilityIndex index_;
};

}  // namespace tbf
