// Shared types for online/offline matching.

#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace tbf {

/// \brief One task-worker pair in a matching; ids index into the instance's
/// task/worker vectors. worker_id == -1 marks an unassigned task.
struct Assignment {
  int task_id = -1;
  int worker_id = -1;
};

/// \brief A complete matching plus the true total distance (the paper's
/// objective: sum of true Euclidean distances over matched pairs).
struct Matching {
  std::vector<Assignment> pairs;

  /// Sum of true distances over pairs with worker_id >= 0.
  double TotalTrueDistance(const std::vector<Point>& tasks,
                           const std::vector<Point>& workers) const {
    double total = 0.0;
    for (const Assignment& a : pairs) {
      if (a.worker_id < 0) continue;
      total += EuclideanDistance(tasks[static_cast<size_t>(a.task_id)],
                                 workers[static_cast<size_t>(a.worker_id)]);
    }
    return total;
  }

  /// Number of tasks that received a worker.
  size_t MatchedCount() const {
    size_t n = 0;
    for (const Assignment& a : pairs) {
      if (a.worker_id >= 0) ++n;
    }
    return n;
  }
};

}  // namespace tbf
