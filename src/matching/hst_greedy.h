// HST-Greedy online matching — paper Algorithm 4 (after Meyerson et al.,
// SODA 2006): each arriving task takes the available worker nearest on the
// tree. Used by both Lap-HG (on Laplace-obfuscated, re-mapped leaves) and
// TBF (on leaves obfuscated by the HST mechanism).
//
// When the tree shape fits packed codes (every built tree does — see
// leaf_code.h), worker leaves are stored as LeafCodes: the scan engine's
// per-pair LCA becomes one XOR + countl_zero instead of a digit loop, and
// the index engine runs on the flat node-pool trie. Oversized shapes fall
// back to LeafPath transparently.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "hst/complete_hst.h"
#include "hst/hst_index.h"
#include "hst/leaf_code.h"
#include "hst/leaf_path.h"

namespace tbf {

/// \brief Search engine for the nearest-on-tree scan.
enum class HstEngine {
  kLinearScan,  ///< O(D n) per task — the paper's stated complexity
  kIndex,       ///< O(c D) per task via HstAvailabilityIndex (extension)
};

// HstTieBreak (canonical vs uniform-random) is defined in hst/hst_index.h;
// both engines produce identical matchings under the canonical rule
// (tested).

/// \brief Stateful online matcher over reported worker leaves; each Assign
/// consumes the returned worker.
class HstGreedyMatcher {
 public:
  /// `workers` are the *reported* (obfuscated) worker leaves; `depth` and
  /// `arity` describe the published complete HST. `rng` is required when
  /// tie_break == kUniformRandom (not owned; must outlive the matcher).
  HstGreedyMatcher(std::vector<LeafPath> workers, int depth, int arity,
                   HstEngine engine = HstEngine::kLinearScan,
                   HstTieBreak tie_break = HstTieBreak::kCanonical,
                   Rng* rng = nullptr);

  /// \brief Assigns an available worker nearest on the tree to a task
  /// reported at leaf `task`; returns its id, or -1 when none remains.
  int Assign(const LeafPath& task);

  size_t available() const { return available_count_; }

 private:
  HstEngine engine_;
  HstTieBreak tie_break_;
  int depth_;
  std::vector<LeafPath> workers_;
  std::vector<LeafCode> worker_codes_;  // packed copy; empty when !codec_
  std::optional<LeafCodec> codec_;
  std::vector<bool> taken_;
  size_t available_count_;
  std::unique_ptr<HstAvailabilityIndex> index_;  // only for kIndex
  Rng* rng_ = nullptr;                           // only for kUniformRandom
};

}  // namespace tbf
