#include "matching/prob_matcher.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "privacy/planar_laplace.h"

namespace tbf {

ReachabilityTable::ReachabilityTable(double epsilon, double max_observed_distance,
                                     double min_radius, double max_radius,
                                     Rng* rng, int mc_samples, int distance_bins,
                                     int radius_bins)
    : epsilon_(epsilon),
      max_distance_(max_observed_distance),
      min_radius_(min_radius),
      max_radius_(max_radius),
      distance_bins_(distance_bins),
      radius_bins_(radius_bins) {
  TBF_CHECK(epsilon > 0.0) << "epsilon must be positive";
  TBF_CHECK(max_observed_distance > 0.0) << "bad distance domain";
  TBF_CHECK(max_radius >= min_radius && min_radius >= 0.0) << "bad radius domain";
  TBF_CHECK(mc_samples > 0 && distance_bins > 0 && radius_bins > 0);

  // One shared pool of noise-difference vectors: if t = t' + X1, w = w' + X2
  // then t - w = (t' - w') + (X1 - X2); sampling X1 - X2 once lets every
  // cell reuse the pool (common random numbers also smooth the table).
  PlanarLaplaceMechanism laplace(epsilon);
  std::vector<Point> noise_diffs(static_cast<size_t>(mc_samples));
  for (Point& d : noise_diffs) {
    Point a = laplace.Obfuscate({0.0, 0.0}, rng);
    Point b = laplace.Obfuscate({0.0, 0.0}, rng);
    d = a - b;
  }

  table_.resize((static_cast<size_t>(distance_bins_) + 1) *
                (static_cast<size_t>(radius_bins_) + 1));
  for (int i = 0; i <= distance_bins_; ++i) {
    double obs = max_distance_ * static_cast<double>(i) / distance_bins_;
    for (int j = 0; j <= radius_bins_; ++j) {
      double radius =
          radius_bins_ == 0
              ? min_radius_
              : min_radius_ + (max_radius_ - min_radius_) *
                                  static_cast<double>(j) / radius_bins_;
      table_[static_cast<size_t>(i) * (static_cast<size_t>(radius_bins_) + 1) +
             static_cast<size_t>(j)] = CellValue(obs, radius, noise_diffs);
    }
  }
}

double ReachabilityTable::CellValue(double observed_distance, double radius,
                                    const std::vector<Point>& noise_diffs) const {
  // True displacement = observed displacement - noise difference. By radial
  // symmetry place the observed displacement on the x-axis.
  const Point observed{observed_distance, 0.0};
  size_t hits = 0;
  for (const Point& nd : noise_diffs) {
    Point true_disp = observed - nd;
    if (EuclideanDistance(true_disp, {0.0, 0.0}) <= radius) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(noise_diffs.size());
}

double ReachabilityTable::Probability(double observed_distance, double radius) const {
  double di = std::clamp(observed_distance, 0.0, max_distance_) / max_distance_ *
              distance_bins_;
  double rj = max_radius_ == min_radius_
                  ? 0.0
                  : std::clamp(radius, min_radius_, max_radius_) - min_radius_;
  if (max_radius_ > min_radius_) {
    rj = rj / (max_radius_ - min_radius_) * radius_bins_;
  }
  int i0 = std::min(static_cast<int>(di), distance_bins_ - 1);
  int j0 = std::min(static_cast<int>(rj), std::max(radius_bins_ - 1, 0));
  double fx = di - i0;
  double fy = rj - j0;
  auto at = [this](int i, int j) {
    return table_[static_cast<size_t>(i) * (static_cast<size_t>(radius_bins_) + 1) +
                  static_cast<size_t>(j)];
  };
  int i1 = std::min(i0 + 1, distance_bins_);
  int j1 = std::min(j0 + 1, radius_bins_);
  double v0 = at(i0, j0) * (1 - fy) + at(i0, j1) * fy;
  double v1 = at(i1, j0) * (1 - fy) + at(i1, j1) * fy;
  return v0 * (1 - fx) + v1 * fx;
}

ProbMatcher::ProbMatcher(std::vector<Point> workers, std::vector<double> radii,
                         std::shared_ptr<const ReachabilityTable> table)
    : workers_(std::move(workers)),
      radii_(std::move(radii)),
      taken_(workers_.size(), false),
      available_count_(workers_.size()),
      table_(std::move(table)) {
  TBF_CHECK(workers_.size() == radii_.size()) << "radii size mismatch";
  TBF_CHECK(table_ != nullptr) << "table required";
}

std::vector<int> ProbMatcher::Candidates(const Point& task, size_t limit) const {
  // Score all available workers, keep positive probabilities, rank by
  // (probability desc, id asc) for determinism.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(available_count_);
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (taken_[i]) continue;
    double p = table_->Probability(EuclideanDistance(task, workers_[i]), radii_[i]);
    if (p > 0.0) scored.emplace_back(p, static_cast<int>(i));
  }
  size_t take = std::min(limit, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

void ProbMatcher::Consume(int worker_id) {
  size_t idx = static_cast<size_t>(worker_id);
  TBF_CHECK(idx < workers_.size() && !taken_[idx]) << "bad consume";
  taken_[idx] = true;
  --available_count_;
}

HstCaseStudyMatcher::HstCaseStudyMatcher(std::vector<LeafPath> workers, int depth,
                                         int arity)
    : workers_(std::move(workers)), index_(depth, arity) {
  for (size_t i = 0; i < workers_.size(); ++i) {
    index_.Insert(workers_[i], static_cast<int>(i));
  }
}

std::vector<int> HstCaseStudyMatcher::Candidates(const LeafPath& task,
                                                 size_t limit) const {
  std::vector<int> out;
  for (const auto& item : index_.NearestK(task, limit)) {
    out.push_back(item.first);
  }
  return out;
}

void HstCaseStudyMatcher::Consume(int worker_id) {
  index_.Remove(workers_[static_cast<size_t>(worker_id)], worker_id);
}

}  // namespace tbf
