#include "matching/hst_greedy.h"

#include "common/logging.h"

namespace tbf {
namespace {

// One scan body serves both representations: LeafPath and LeafCode compare
// in lexicographic path order alike, so the canonical tie-break rule (LCA
// level, leaf path, worker id) carries over unchanged; only the LCA functor
// differs (digit loop vs XOR + countl_zero).
template <typename Worker, typename Lca>
int ScanCanonical(const std::vector<Worker>& workers,
                  const std::vector<bool>& taken, int depth,
                  const Worker& task, Lca&& lca) {
  int best = -1;
  int best_level = depth + 1;
  for (size_t i = 0; i < workers.size(); ++i) {
    if (taken[i]) continue;
    const int level = lca(task, workers[i]);
    if (level < best_level ||
        (level == best_level &&
         workers[i] < workers[static_cast<size_t>(best)])) {
      best_level = level;
      best = static_cast<int>(i);
    }
  }
  return best;
}

// Reservoir sampling over the minimal-level workers: one pass, uniform
// among ties.
template <typename Worker, typename Lca>
int ScanReservoir(const std::vector<Worker>& workers,
                  const std::vector<bool>& taken, int depth,
                  const Worker& task, Lca&& lca, Rng* rng) {
  int best = -1;
  int best_level = depth + 1;
  int tie_count = 0;
  for (size_t i = 0; i < workers.size(); ++i) {
    if (taken[i]) continue;
    const int level = lca(task, workers[i]);
    if (level < best_level) {
      best_level = level;
      best = static_cast<int>(i);
      tie_count = 1;
    } else if (level == best_level) {
      ++tie_count;
      if (rng->UniformInt(1, tie_count) == 1) best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

HstGreedyMatcher::HstGreedyMatcher(std::vector<LeafPath> workers, int depth,
                                   int arity, HstEngine engine,
                                   HstTieBreak tie_break, Rng* rng)
    : engine_(engine),
      tie_break_(tie_break),
      depth_(depth),
      workers_(std::move(workers)),
      taken_(workers_.size(), false),
      available_count_(workers_.size()),
      rng_(rng) {
  for (const LeafPath& leaf : workers_) {
    TBF_CHECK(static_cast<int>(leaf.size()) == depth_) << "leaf depth mismatch";
  }
  TBF_CHECK(tie_break_ == HstTieBreak::kCanonical || rng_ != nullptr)
      << "kUniformRandom tie-breaking requires an rng";
  if (LeafCodec::Fits(depth, arity)) {
    codec_.emplace(depth, arity);
    worker_codes_.reserve(workers_.size());
    for (const LeafPath& leaf : workers_) {
      worker_codes_.push_back(codec_->Pack(leaf));
    }
  }
  if (engine_ == HstEngine::kIndex) {
    index_ = std::make_unique<HstAvailabilityIndex>(depth, arity);
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (codec_) {
        index_->Insert(worker_codes_[i], static_cast<int>(i));
      } else {
        index_->Insert(workers_[i], static_cast<int>(i));
      }
    }
  }
  if (codec_) {
    // Every post-construction path runs on worker_codes_; drop the heap-heavy
    // LeafPath copies (several MB at 100k workers).
    workers_.clear();
    workers_.shrink_to_fit();
  }
}

int HstGreedyMatcher::Assign(const LeafPath& task) {
  TBF_DCHECK(static_cast<int>(task.size()) == depth_) << "leaf depth mismatch";
  if (available_count_ == 0) return -1;
  int best = -1;
  if (engine_ == HstEngine::kIndex) {
    auto nearest = tie_break_ == HstTieBreak::kCanonical
                       ? index_->Nearest(task)
                       : index_->NearestUniform(task, rng_);
    if (nearest) {
      best = nearest->first;
      if (codec_) {
        index_->Remove(worker_codes_[static_cast<size_t>(best)], best);
      } else {
        index_->Remove(workers_[static_cast<size_t>(best)], best);
      }
    }
  } else if (codec_) {
    const LeafCode code = codec_->Pack(task);
    const auto lca = [this](LeafCode a, LeafCode b) {
      return codec_->LcaLevel(a, b);
    };
    best = tie_break_ == HstTieBreak::kCanonical
               ? ScanCanonical(worker_codes_, taken_, depth_, code, lca)
               : ScanReservoir(worker_codes_, taken_, depth_, code, lca, rng_);
  } else {
    const auto lca = [](const LeafPath& a, const LeafPath& b) {
      return LcaLevel(a, b);
    };
    best = tie_break_ == HstTieBreak::kCanonical
               ? ScanCanonical(workers_, taken_, depth_, task, lca)
               : ScanReservoir(workers_, taken_, depth_, task, lca, rng_);
  }
  if (best >= 0) {
    taken_[static_cast<size_t>(best)] = true;
    --available_count_;
  }
  return best;
}

}  // namespace tbf
