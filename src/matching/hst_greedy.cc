#include "matching/hst_greedy.h"

#include "common/logging.h"

namespace tbf {

HstGreedyMatcher::HstGreedyMatcher(std::vector<LeafPath> workers, int depth,
                                   int arity, HstEngine engine,
                                   HstTieBreak tie_break, Rng* rng)
    : engine_(engine),
      tie_break_(tie_break),
      depth_(depth),
      workers_(std::move(workers)),
      taken_(workers_.size(), false),
      available_count_(workers_.size()),
      rng_(rng) {
  for (const LeafPath& leaf : workers_) {
    TBF_CHECK(static_cast<int>(leaf.size()) == depth_) << "leaf depth mismatch";
  }
  TBF_CHECK(tie_break_ == HstTieBreak::kCanonical || rng_ != nullptr)
      << "kUniformRandom tie-breaking requires an rng";
  if (engine_ == HstEngine::kIndex) {
    index_ = std::make_unique<HstAvailabilityIndex>(depth, arity);
    for (size_t i = 0; i < workers_.size(); ++i) {
      index_->Insert(workers_[i], static_cast<int>(i));
    }
  }
}

int HstGreedyMatcher::Assign(const LeafPath& task) {
  if (available_count_ == 0) return -1;
  int best = -1;
  if (engine_ == HstEngine::kIndex) {
    if (tie_break_ == HstTieBreak::kCanonical) {
      auto nearest = index_->Nearest(task);
      if (nearest) best = nearest->first;
    } else {
      auto nearest = index_->NearestUniform(task, rng_);
      if (nearest) best = nearest->first;
    }
    if (best >= 0) index_->Remove(workers_[static_cast<size_t>(best)], best);
  } else {
    best = tie_break_ == HstTieBreak::kCanonical ? AssignScan(task)
                                                 : AssignScanRandom(task);
  }
  if (best >= 0) {
    taken_[static_cast<size_t>(best)] = true;
    --available_count_;
  }
  return best;
}

int HstGreedyMatcher::AssignScan(const LeafPath& task) {
  // Canonical tie-break: (LCA level, leaf path, worker id) — identical to
  // the index engine's enumeration order.
  int best = -1;
  int best_level = depth_ + 1;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (taken_[i]) continue;
    int level = LcaLevel(task, workers_[i]);
    if (level < best_level ||
        (level == best_level &&
         workers_[i] < workers_[static_cast<size_t>(best)])) {
      best_level = level;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int HstGreedyMatcher::AssignScanRandom(const LeafPath& task) {
  // Reservoir sampling over the minimal-level workers: one pass, uniform
  // among ties.
  int best = -1;
  int best_level = depth_ + 1;
  int tie_count = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (taken_[i]) continue;
    int level = LcaLevel(task, workers_[i]);
    if (level < best_level) {
      best_level = level;
      best = static_cast<int>(i);
      tie_count = 1;
    } else if (level == best_level) {
      ++tie_count;
      if (rng_->UniformInt(1, tie_count) == 1) best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace tbf
