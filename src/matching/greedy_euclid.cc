#include "matching/greedy_euclid.h"

#include <limits>

namespace tbf {

GreedyEuclidMatcher::GreedyEuclidMatcher(std::vector<Point> workers,
                                         GreedyEngine engine)
    : engine_(engine),
      workers_(std::move(workers)),
      taken_(workers_.size(), false),
      available_count_(workers_.size()) {
  if (engine_ == GreedyEngine::kKdTree) {
    index_ = std::make_unique<KdTree>(workers_);
  }
}

int GreedyEuclidMatcher::Assign(const Point& task) {
  if (available_count_ == 0) return -1;
  int best = -1;
  if (engine_ == GreedyEngine::kKdTree) {
    best = index_->NearestNeighbor(task);
    if (best >= 0) index_->Deactivate(best);
  } else {
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (taken_[i]) continue;
      double d2 = SquaredDistance(task, workers_[i]);
      if (d2 < best_d2) {  // strict: first minimum wins => smallest id
        best_d2 = d2;
        best = static_cast<int>(i);
      }
    }
  }
  if (best >= 0) {
    taken_[static_cast<size_t>(best)] = true;
    --available_count_;
  }
  return best;
}

}  // namespace tbf
