#include "matching/runner.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/memory.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "matching/hungarian.h"
#include "matching/prob_matcher.h"
#include "privacy/exponential.h"
#include "privacy/planar_laplace.h"
#include "serve/sharded_server.h"

namespace tbf {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLapGr: return "Lap-GR";
    case Algorithm::kLapHg: return "Lap-HG";
    case Algorithm::kTbf: return "TBF";
    case Algorithm::kNoPrivacyGreedy: return "NoPriv-GR";
    case Algorithm::kOfflineOptimal: return "OPT";
    case Algorithm::kExpGr: return "Exp-GR";
  }
  return "?";
}

const char* CaseStudyAlgorithmName(CaseStudyAlgorithm algorithm) {
  switch (algorithm) {
    case CaseStudyAlgorithm::kProb: return "Prob";
    case CaseStudyAlgorithm::kTbf: return "TBF";
  }
  return "?";
}

namespace {

// Builds the published TBF framework over a uniform grid covering the
// instance region.
Result<TbfFramework> BuildFramework(const OnlineInstance& instance,
                                    const PipelineConfig& config, Rng* rng) {
  TBF_ASSIGN_OR_RETURN(std::vector<Point> grid,
                       UniformGridPoints(instance.region, config.grid_side));
  EuclideanMetric metric;
  TbfOptions options;
  options.epsilon = config.epsilon;
  return TbfFramework::Build(std::move(grid), metric, rng, options);
}

// Batch obfuscation: item i draws from stream.ForkAt(i), so the reports are
// bit-identical for any pool width.
std::vector<Point> ObfuscatePoints(const std::vector<Point>& truth,
                                   const PointMechanism& mechanism,
                                   const Rng& stream, ThreadPool* pool) {
  std::vector<Point> out(truth.size());
  pool->ParallelFor(truth.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng item_rng = stream.ForkAt(i);
      out[i] = mechanism.Obfuscate(truth[i], &item_rng);
    }
  });
  return out;
}

// Timed sequential assignment loop shared by both pipelines: per-task wall
// samples feed max/avg, the outer timer the stage total. Mean is computed
// over the same per-task samples as the max, so mean <= max holds even when
// the loop is preempted between timer reads.
template <typename Matcher, typename Report>
void RunAssignLoop(Matcher* matcher, const std::vector<Report>& tasks,
                   RunMetrics* metrics) {
  metrics->matching.pairs.reserve(tasks.size());
  WallTimer match_timer;
  double assign_sample_total = 0.0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    WallTimer assign_timer;
    int worker = matcher->Assign(tasks[t]);
    const double assign_seconds = assign_timer.ElapsedSeconds();
    assign_sample_total += assign_seconds;
    metrics->max_assign_seconds =
        std::max(metrics->max_assign_seconds, assign_seconds);
    metrics->matching.pairs.push_back({static_cast<int>(t), worker});
  }
  metrics->match_seconds = match_timer.ElapsedSeconds();
  metrics->avg_assign_seconds =
      assign_sample_total / static_cast<double>(tasks.size());
  metrics->stages.assign_seconds = metrics->match_seconds;
}

Result<RunMetrics> RunEuclidPipeline(Algorithm algorithm,
                                     const OnlineInstance& instance,
                                     const PipelineConfig& config) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(algorithm);
  MemoryProbe probe;
  Rng rng(config.seed);
  Rng obf_rng = rng.Split(1);
  const Rng worker_stream = obf_rng.Split(0);
  const Rng task_stream = obf_rng.Split(1);
  ThreadPool pool(config.threads);

  std::unique_ptr<PointMechanism> mechanism;
  if (algorithm == Algorithm::kLapGr) {
    mechanism = std::make_unique<PlanarLaplaceMechanism>(
        config.epsilon, config.clamp_laplace
                            ? std::optional<BBox>(instance.region)
                            : std::nullopt);
  } else if (algorithm == Algorithm::kExpGr) {
    TBF_ASSIGN_OR_RETURN(std::vector<Point> grid,
                         UniformGridPoints(instance.region, config.grid_side));
    mechanism = std::make_unique<DiscreteExponentialMechanism>(std::move(grid),
                                                               config.epsilon);
  } else {
    mechanism = std::make_unique<IdentityPointMechanism>();
  }

  WallTimer obf_timer;
  std::vector<Point> reported_workers =
      ObfuscatePoints(instance.workers, *mechanism, worker_stream, &pool);
  std::vector<Point> reported_tasks =
      ObfuscatePoints(instance.tasks, *mechanism, task_stream, &pool);
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  metrics.stages.obfuscate_seconds = metrics.obfuscate_seconds;
  metrics.stages.threads = pool.num_threads();
  metrics.stages.batch_items = instance.workers.size() + instance.tasks.size();
  probe.Sample();

  GreedyEuclidMatcher matcher(std::move(reported_workers), config.greedy_engine);
  RunAssignLoop(&matcher, reported_tasks, &metrics);
  probe.Sample();

  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

// Adapter giving the sharded serving engine the matcher's Assign shape so
// RunAssignLoop can drive it: worker ids are decimal worker indexes (the
// Matching index space), tasks get synthetic sequential ids.
class ServeEngineMatcher {
 public:
  static Result<ServeEngineMatcher> Create(const TbfFramework& framework,
                                           std::vector<LeafPath> workers,
                                           int num_shards) {
    ShardedServerOptions options;
    options.num_shards = num_shards;
    TBF_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardedTbfServer> server,
        ShardedTbfServer::Create(framework.tree_ptr(), options));
    std::vector<LeafReport> batch;
    batch.reserve(workers.size());
    for (size_t w = 0; w < workers.size(); ++w) {
      batch.push_back({std::to_string(w), std::move(workers[w]), std::nullopt});
    }
    for (const Status& status : server->RegisterWorkers(batch)) {
      TBF_RETURN_NOT_OK(status);
    }
    return ServeEngineMatcher(std::move(server));
  }

  int Assign(const LeafPath& task) {
    Result<DispatchResult> dispatched =
        server_->SubmitTask(std::to_string(next_task_id_++), task);
    if (!dispatched.ok() || !dispatched->worker) return -1;
    return std::atoi(dispatched->worker->c_str());
  }

 private:
  explicit ServeEngineMatcher(std::unique_ptr<ShardedTbfServer> server)
      : server_(std::move(server)) {}

  std::unique_ptr<ShardedTbfServer> server_;
  uint64_t next_task_id_ = 0;
};

// Maps already-noisy points onto their nearest published leaves in parallel
// (pure reads; ordering-independent).
std::vector<LeafPath> MapToLeaves(const std::vector<Point>& points,
                                  const TbfFramework& framework,
                                  ThreadPool* pool) {
  std::vector<LeafPath> leaves(points.size());
  pool->ParallelFor(points.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      leaves[i] = framework.TrueLeaf(points[i]);
    }
  });
  return leaves;
}

Result<RunMetrics> RunHstPipeline(Algorithm algorithm,
                                  const OnlineInstance& instance,
                                  const PipelineConfig& config) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(algorithm);
  MemoryProbe probe;
  Rng rng(config.seed);
  Rng tree_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);
  const Rng worker_stream = obf_rng.Split(0);
  const Rng task_stream = obf_rng.Split(1);
  ThreadPool pool(config.threads);

  WallTimer build_timer;
  TBF_ASSIGN_OR_RETURN(TbfFramework framework,
                       BuildFramework(instance, config, &tree_rng));
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  // Client-side reporting, batched across the pool.
  WallTimer obf_timer;
  std::vector<LeafPath> reported_workers;
  std::vector<LeafPath> reported_tasks;
  TbfFramework::BatchStageTimings batch_timings;
  if (algorithm == Algorithm::kTbf) {
    reported_workers = framework.ObfuscateBatch(instance.workers, worker_stream,
                                                &pool, &batch_timings);
    reported_tasks = framework.ObfuscateBatch(instance.tasks, task_stream,
                                              &pool, &batch_timings);
  } else {  // Lap-HG: Laplace noise in the plane, then map to the tree
    PlanarLaplaceMechanism laplace(config.epsilon,
                                   config.clamp_laplace
                                       ? std::optional<BBox>(instance.region)
                                       : std::nullopt);
    WallTimer stage_timer;
    std::vector<Point> noisy_workers =
        ObfuscatePoints(instance.workers, laplace, worker_stream, &pool);
    std::vector<Point> noisy_tasks =
        ObfuscatePoints(instance.tasks, laplace, task_stream, &pool);
    batch_timings.obfuscate_seconds = stage_timer.ElapsedSeconds();
    stage_timer.Restart();
    reported_workers = MapToLeaves(noisy_workers, framework, &pool);
    reported_tasks = MapToLeaves(noisy_tasks, framework, &pool);
    batch_timings.map_seconds = stage_timer.ElapsedSeconds();
  }
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  metrics.stages.map_seconds = batch_timings.map_seconds;
  metrics.stages.obfuscate_seconds = batch_timings.obfuscate_seconds;
  metrics.stages.threads = pool.num_threads();
  metrics.stages.batch_items = instance.workers.size() + instance.tasks.size();
  probe.Sample();

  if (algorithm == Algorithm::kTbf && config.serve_shards > 0) {
    // Dispatch through the sharded serving engine instead of the matcher.
    // Driven sequentially from this loop, the engine's choices are
    // draw-for-draw identical for every shard count (see
    // serve/sharded_server.h), so this only changes what is measured.
    TBF_ASSIGN_OR_RETURN(
        ServeEngineMatcher matcher,
        ServeEngineMatcher::Create(framework, std::move(reported_workers),
                                   config.serve_shards));
    metrics.stages.shards = config.serve_shards;
    RunAssignLoop(&matcher, reported_tasks, &metrics);
  } else {
    HstGreedyMatcher matcher(std::move(reported_workers),
                             framework.tree().depth(),
                             framework.tree().arity(), config.hst_engine);
    RunAssignLoop(&matcher, reported_tasks, &metrics);
  }
  probe.Sample();

  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

Result<RunMetrics> RunOfflineOptimal(const OnlineInstance& instance) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(Algorithm::kOfflineOptimal);
  MemoryProbe probe;
  WallTimer timer;
  TBF_ASSIGN_OR_RETURN(Matching matching,
                       OptimalMatching(instance.tasks, instance.workers));
  metrics.match_seconds = timer.ElapsedSeconds();
  probe.Sample();
  metrics.matching = std::move(matching);
  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

}  // namespace

Result<RunMetrics> RunPipeline(Algorithm algorithm, const OnlineInstance& instance,
                               const PipelineConfig& config) {
  if (instance.tasks.empty() || instance.workers.empty()) {
    return Status::InvalidArgument("instance must have tasks and workers");
  }
  if (instance.tasks.size() > instance.workers.size()) {
    return Status::InvalidArgument("OMBM requires |T| <= |W|");
  }
  switch (algorithm) {
    case Algorithm::kLapGr:
    case Algorithm::kNoPrivacyGreedy:
    case Algorithm::kExpGr:
      return RunEuclidPipeline(algorithm, instance, config);
    case Algorithm::kLapHg:
    case Algorithm::kTbf:
      return RunHstPipeline(algorithm, instance, config);
    case Algorithm::kOfflineOptimal:
      return RunOfflineOptimal(instance);
  }
  return Status::InvalidArgument("unknown algorithm");
}

namespace {

// Shared notification loop: walk the ranked candidates, a worker accepts
// iff the task is truly within their reachable radius.
template <typename CandidatesFn, typename ConsumeFn>
void NotifyLoop(const CaseStudyInstance& instance, size_t task_index,
                size_t max_notifications, const CandidatesFn& candidates,
                const ConsumeFn& consume, CaseStudyMetrics* metrics) {
  const Point& true_task = instance.tasks[task_index];
  for (int worker : candidates(max_notifications)) {
    ++metrics->notifications;
    double true_distance =
        EuclideanDistance(true_task, instance.workers[static_cast<size_t>(worker)]);
    if (true_distance <= instance.radii[static_cast<size_t>(worker)]) {
      consume(worker);
      ++metrics->matching_size;
      break;
    }
  }
}

Result<CaseStudyMetrics> RunProbCaseStudy(const CaseStudyInstance& instance,
                                          const CaseStudyConfig& config) {
  CaseStudyMetrics metrics;
  metrics.algorithm = CaseStudyAlgorithmName(CaseStudyAlgorithm::kProb);
  MemoryProbe probe;
  Rng rng(config.pipeline.seed);
  Rng table_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);
  const Rng worker_stream = obf_rng.Split(0);
  const Rng task_stream = obf_rng.Split(1);
  ThreadPool pool(config.pipeline.threads);

  double min_radius = instance.radii.empty() ? 0.0 : instance.radii[0];
  double max_radius = min_radius;
  for (double r : instance.radii) {
    min_radius = std::min(min_radius, r);
    max_radius = std::max(max_radius, r);
  }

  WallTimer build_timer;
  auto table = std::make_shared<const ReachabilityTable>(
      config.pipeline.epsilon, instance.region.Diagonal(), min_radius,
      max_radius, &table_rng);
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  PlanarLaplaceMechanism laplace(config.pipeline.epsilon,
                                 config.pipeline.clamp_laplace
                                     ? std::optional<BBox>(instance.region)
                                     : std::nullopt);
  WallTimer obf_timer;
  std::vector<Point> reported_workers =
      ObfuscatePoints(instance.workers, laplace, worker_stream, &pool);
  std::vector<Point> reported_tasks =
      ObfuscatePoints(instance.tasks, laplace, task_stream, &pool);
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  ProbMatcher matcher(std::move(reported_workers), instance.radii, table);
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    NotifyLoop(
        instance, t, config.max_notifications,
        [&](size_t limit) { return matcher.Candidates(reported_tasks[t], limit); },
        [&](int worker) { matcher.Consume(worker); }, &metrics);
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  probe.Sample();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

Result<CaseStudyMetrics> RunTbfCaseStudy(const CaseStudyInstance& instance,
                                         const CaseStudyConfig& config) {
  CaseStudyMetrics metrics;
  metrics.algorithm = CaseStudyAlgorithmName(CaseStudyAlgorithm::kTbf);
  MemoryProbe probe;
  Rng rng(config.pipeline.seed);
  Rng tree_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);
  const Rng worker_stream = obf_rng.Split(0);
  const Rng task_stream = obf_rng.Split(1);
  ThreadPool pool(config.pipeline.threads);

  OnlineInstance base;
  base.region = instance.region;
  base.workers = instance.workers;
  base.tasks = instance.tasks;

  WallTimer build_timer;
  TBF_ASSIGN_OR_RETURN(TbfFramework framework,
                       BuildFramework(base, config.pipeline, &tree_rng));
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  WallTimer obf_timer;
  std::vector<LeafPath> reported_workers =
      framework.ObfuscateBatch(instance.workers, worker_stream, &pool);
  std::vector<LeafPath> reported_tasks =
      framework.ObfuscateBatch(instance.tasks, task_stream, &pool);
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  HstCaseStudyMatcher matcher(std::move(reported_workers),
                              framework.tree().depth(), framework.tree().arity());
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    NotifyLoop(
        instance, t, config.max_notifications,
        [&](size_t limit) { return matcher.Candidates(reported_tasks[t], limit); },
        [&](int worker) { matcher.Consume(worker); }, &metrics);
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  probe.Sample();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

}  // namespace

Result<CaseStudyMetrics> RunCaseStudy(CaseStudyAlgorithm algorithm,
                                      const CaseStudyInstance& instance,
                                      const CaseStudyConfig& config) {
  if (instance.tasks.empty() || instance.workers.empty()) {
    return Status::InvalidArgument("instance must have tasks and workers");
  }
  if (instance.workers.size() != instance.radii.size()) {
    return Status::InvalidArgument("radii size mismatch");
  }
  switch (algorithm) {
    case CaseStudyAlgorithm::kProb:
      return RunProbCaseStudy(instance, config);
    case CaseStudyAlgorithm::kTbf:
      return RunTbfCaseStudy(instance, config);
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace tbf
