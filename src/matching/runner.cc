#include "matching/runner.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/memory.h"
#include "common/timer.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "matching/hungarian.h"
#include "matching/prob_matcher.h"
#include "privacy/exponential.h"
#include "privacy/planar_laplace.h"

namespace tbf {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLapGr: return "Lap-GR";
    case Algorithm::kLapHg: return "Lap-HG";
    case Algorithm::kTbf: return "TBF";
    case Algorithm::kNoPrivacyGreedy: return "NoPriv-GR";
    case Algorithm::kOfflineOptimal: return "OPT";
    case Algorithm::kExpGr: return "Exp-GR";
  }
  return "?";
}

const char* CaseStudyAlgorithmName(CaseStudyAlgorithm algorithm) {
  switch (algorithm) {
    case CaseStudyAlgorithm::kProb: return "Prob";
    case CaseStudyAlgorithm::kTbf: return "TBF";
  }
  return "?";
}

namespace {

// Builds the published TBF framework over a uniform grid covering the
// instance region.
Result<TbfFramework> BuildFramework(const OnlineInstance& instance,
                                    const PipelineConfig& config, Rng* rng) {
  TBF_ASSIGN_OR_RETURN(std::vector<Point> grid,
                       UniformGridPoints(instance.region, config.grid_side));
  EuclideanMetric metric;
  TbfOptions options;
  options.epsilon = config.epsilon;
  return TbfFramework::Build(std::move(grid), metric, rng, options);
}

std::vector<Point> ObfuscatePoints(const std::vector<Point>& truth,
                                   const PointMechanism& mechanism, Rng* rng) {
  std::vector<Point> out;
  out.reserve(truth.size());
  for (const Point& p : truth) out.push_back(mechanism.Obfuscate(p, rng));
  return out;
}

Result<RunMetrics> RunEuclidPipeline(Algorithm algorithm,
                                     const OnlineInstance& instance,
                                     const PipelineConfig& config) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(algorithm);
  MemoryProbe probe;
  Rng rng(config.seed);
  Rng obf_rng = rng.Split(1);

  std::unique_ptr<PointMechanism> mechanism;
  if (algorithm == Algorithm::kLapGr) {
    mechanism = std::make_unique<PlanarLaplaceMechanism>(
        config.epsilon, config.clamp_laplace
                            ? std::optional<BBox>(instance.region)
                            : std::nullopt);
  } else if (algorithm == Algorithm::kExpGr) {
    TBF_ASSIGN_OR_RETURN(std::vector<Point> grid,
                         UniformGridPoints(instance.region, config.grid_side));
    mechanism = std::make_unique<DiscreteExponentialMechanism>(std::move(grid),
                                                               config.epsilon);
  } else {
    mechanism = std::make_unique<IdentityPointMechanism>();
  }

  WallTimer obf_timer;
  std::vector<Point> reported_workers =
      ObfuscatePoints(instance.workers, *mechanism, &obf_rng);
  std::vector<Point> reported_tasks =
      ObfuscatePoints(instance.tasks, *mechanism, &obf_rng);
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  GreedyEuclidMatcher matcher(std::move(reported_workers), config.greedy_engine);
  metrics.matching.pairs.reserve(instance.tasks.size());
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    WallTimer assign_timer;
    int worker = matcher.Assign(reported_tasks[t]);
    metrics.max_assign_seconds =
        std::max(metrics.max_assign_seconds, assign_timer.ElapsedSeconds());
    metrics.matching.pairs.push_back({static_cast<int>(t), worker});
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  metrics.avg_assign_seconds =
      metrics.match_seconds / static_cast<double>(instance.tasks.size());
  probe.Sample();

  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

Result<RunMetrics> RunHstPipeline(Algorithm algorithm,
                                  const OnlineInstance& instance,
                                  const PipelineConfig& config) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(algorithm);
  MemoryProbe probe;
  Rng rng(config.seed);
  Rng tree_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);

  WallTimer build_timer;
  TBF_ASSIGN_OR_RETURN(TbfFramework framework,
                       BuildFramework(instance, config, &tree_rng));
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  // Client-side reporting.
  WallTimer obf_timer;
  std::vector<LeafPath> reported_workers;
  std::vector<LeafPath> reported_tasks;
  reported_workers.reserve(instance.workers.size());
  reported_tasks.reserve(instance.tasks.size());
  if (algorithm == Algorithm::kTbf) {
    for (const Point& w : instance.workers) {
      reported_workers.push_back(framework.ObfuscateLocation(w, &obf_rng));
    }
    for (const Point& t : instance.tasks) {
      reported_tasks.push_back(framework.ObfuscateLocation(t, &obf_rng));
    }
  } else {  // Lap-HG: Laplace noise in the plane, then map to the tree
    PlanarLaplaceMechanism laplace(config.epsilon,
                                   config.clamp_laplace
                                       ? std::optional<BBox>(instance.region)
                                       : std::nullopt);
    for (const Point& w : instance.workers) {
      reported_workers.push_back(
          framework.TrueLeaf(laplace.Obfuscate(w, &obf_rng)));
    }
    for (const Point& t : instance.tasks) {
      reported_tasks.push_back(
          framework.TrueLeaf(laplace.Obfuscate(t, &obf_rng)));
    }
  }
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  HstGreedyMatcher matcher(std::move(reported_workers), framework.tree().depth(),
                           framework.tree().arity(), config.hst_engine);
  metrics.matching.pairs.reserve(instance.tasks.size());
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    WallTimer assign_timer;
    int worker = matcher.Assign(reported_tasks[t]);
    metrics.max_assign_seconds =
        std::max(metrics.max_assign_seconds, assign_timer.ElapsedSeconds());
    metrics.matching.pairs.push_back({static_cast<int>(t), worker});
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  metrics.avg_assign_seconds =
      metrics.match_seconds / static_cast<double>(instance.tasks.size());
  probe.Sample();

  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

Result<RunMetrics> RunOfflineOptimal(const OnlineInstance& instance) {
  RunMetrics metrics;
  metrics.algorithm = AlgorithmName(Algorithm::kOfflineOptimal);
  MemoryProbe probe;
  WallTimer timer;
  TBF_ASSIGN_OR_RETURN(Matching matching,
                       OptimalMatching(instance.tasks, instance.workers));
  metrics.match_seconds = timer.ElapsedSeconds();
  probe.Sample();
  metrics.matching = std::move(matching);
  metrics.total_distance =
      metrics.matching.TotalTrueDistance(instance.tasks, instance.workers);
  metrics.matched = metrics.matching.MatchedCount();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

}  // namespace

Result<RunMetrics> RunPipeline(Algorithm algorithm, const OnlineInstance& instance,
                               const PipelineConfig& config) {
  if (instance.tasks.empty() || instance.workers.empty()) {
    return Status::InvalidArgument("instance must have tasks and workers");
  }
  if (instance.tasks.size() > instance.workers.size()) {
    return Status::InvalidArgument("OMBM requires |T| <= |W|");
  }
  switch (algorithm) {
    case Algorithm::kLapGr:
    case Algorithm::kNoPrivacyGreedy:
    case Algorithm::kExpGr:
      return RunEuclidPipeline(algorithm, instance, config);
    case Algorithm::kLapHg:
    case Algorithm::kTbf:
      return RunHstPipeline(algorithm, instance, config);
    case Algorithm::kOfflineOptimal:
      return RunOfflineOptimal(instance);
  }
  return Status::InvalidArgument("unknown algorithm");
}

namespace {

// Shared notification loop: walk the ranked candidates, a worker accepts
// iff the task is truly within their reachable radius.
template <typename CandidatesFn, typename ConsumeFn>
void NotifyLoop(const CaseStudyInstance& instance, size_t task_index,
                size_t max_notifications, const CandidatesFn& candidates,
                const ConsumeFn& consume, CaseStudyMetrics* metrics) {
  const Point& true_task = instance.tasks[task_index];
  for (int worker : candidates(max_notifications)) {
    ++metrics->notifications;
    double true_distance =
        EuclideanDistance(true_task, instance.workers[static_cast<size_t>(worker)]);
    if (true_distance <= instance.radii[static_cast<size_t>(worker)]) {
      consume(worker);
      ++metrics->matching_size;
      break;
    }
  }
}

Result<CaseStudyMetrics> RunProbCaseStudy(const CaseStudyInstance& instance,
                                          const CaseStudyConfig& config) {
  CaseStudyMetrics metrics;
  metrics.algorithm = CaseStudyAlgorithmName(CaseStudyAlgorithm::kProb);
  MemoryProbe probe;
  Rng rng(config.pipeline.seed);
  Rng table_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);

  double min_radius = instance.radii.empty() ? 0.0 : instance.radii[0];
  double max_radius = min_radius;
  for (double r : instance.radii) {
    min_radius = std::min(min_radius, r);
    max_radius = std::max(max_radius, r);
  }

  WallTimer build_timer;
  auto table = std::make_shared<const ReachabilityTable>(
      config.pipeline.epsilon, instance.region.Diagonal(), min_radius,
      max_radius, &table_rng);
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  PlanarLaplaceMechanism laplace(config.pipeline.epsilon,
                                 config.pipeline.clamp_laplace
                                     ? std::optional<BBox>(instance.region)
                                     : std::nullopt);
  WallTimer obf_timer;
  std::vector<Point> reported_workers =
      ObfuscatePoints(instance.workers, laplace, &obf_rng);
  std::vector<Point> reported_tasks =
      ObfuscatePoints(instance.tasks, laplace, &obf_rng);
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  ProbMatcher matcher(std::move(reported_workers), instance.radii, table);
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    NotifyLoop(
        instance, t, config.max_notifications,
        [&](size_t limit) { return matcher.Candidates(reported_tasks[t], limit); },
        [&](int worker) { matcher.Consume(worker); }, &metrics);
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  probe.Sample();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

Result<CaseStudyMetrics> RunTbfCaseStudy(const CaseStudyInstance& instance,
                                         const CaseStudyConfig& config) {
  CaseStudyMetrics metrics;
  metrics.algorithm = CaseStudyAlgorithmName(CaseStudyAlgorithm::kTbf);
  MemoryProbe probe;
  Rng rng(config.pipeline.seed);
  Rng tree_rng = rng.Split(0);
  Rng obf_rng = rng.Split(1);

  OnlineInstance base;
  base.region = instance.region;
  base.workers = instance.workers;
  base.tasks = instance.tasks;

  WallTimer build_timer;
  TBF_ASSIGN_OR_RETURN(TbfFramework framework,
                       BuildFramework(base, config.pipeline, &tree_rng));
  metrics.build_seconds = build_timer.ElapsedSeconds();
  probe.Sample();

  WallTimer obf_timer;
  std::vector<LeafPath> reported_workers;
  reported_workers.reserve(instance.workers.size());
  for (const Point& w : instance.workers) {
    reported_workers.push_back(framework.ObfuscateLocation(w, &obf_rng));
  }
  std::vector<LeafPath> reported_tasks;
  reported_tasks.reserve(instance.tasks.size());
  for (const Point& t : instance.tasks) {
    reported_tasks.push_back(framework.ObfuscateLocation(t, &obf_rng));
  }
  metrics.obfuscate_seconds = obf_timer.ElapsedSeconds();
  probe.Sample();

  HstCaseStudyMatcher matcher(std::move(reported_workers),
                              framework.tree().depth(), framework.tree().arity());
  WallTimer match_timer;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    NotifyLoop(
        instance, t, config.max_notifications,
        [&](size_t limit) { return matcher.Candidates(reported_tasks[t], limit); },
        [&](int worker) { matcher.Consume(worker); }, &metrics);
  }
  metrics.match_seconds = match_timer.ElapsedSeconds();
  probe.Sample();
  metrics.memory_mb = BytesToMiB(probe.max_rss_bytes());
  return metrics;
}

}  // namespace

Result<CaseStudyMetrics> RunCaseStudy(CaseStudyAlgorithm algorithm,
                                      const CaseStudyInstance& instance,
                                      const CaseStudyConfig& config) {
  if (instance.tasks.empty() || instance.workers.empty()) {
    return Status::InvalidArgument("instance must have tasks and workers");
  }
  if (instance.workers.size() != instance.radii.size()) {
    return Status::InvalidArgument("radii size mismatch");
  }
  switch (algorithm) {
    case CaseStudyAlgorithm::kProb:
      return RunProbCaseStudy(instance, config);
    case CaseStudyAlgorithm::kTbf:
      return RunTbfCaseStudy(instance, config);
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace tbf
