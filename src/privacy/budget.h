// Privacy budget accounting.
//
// The paper analyzes a single report per user. Deployments re-report
// (drivers move, tasks are reposted); each extra report through an
// eps-Geo-I mechanism composes additively (sequential composition of
// differential privacy). Two ledgers implement the resulting admission
// control:
//
//   * PrivacyBudgetLedger — per-user spend against a single lifetime cap.
//   * EpochBudgetLedger — the serving engine's epoch-aware variant: spend
//     is additionally rate-limited per event-time epoch, so a user who
//     burns their per-epoch allowance is refused only until the next
//     epoch begins (rollover), while an optional lifetime cap still
//     composes across all epochs.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tbf {

/// \brief Sequential composition: total budget of k eps-Geo-I reports.
double ComposedEpsilon(double epsilon_per_report, int reports);

/// \brief Reports permitted under `total_budget` at `epsilon_per_report`
/// (floor; 0 when a single report already exceeds the budget).
int MaxReports(double total_budget, double epsilon_per_report);

/// \brief Per-user privacy-spend ledger with a lifetime cap.
///
/// Thread-compatible (guard externally if shared across threads).
class PrivacyBudgetLedger {
 public:
  /// \param lifetime_budget maximum cumulative epsilon per user (> 0).
  explicit PrivacyBudgetLedger(double lifetime_budget);

  /// \brief Records a spend of `epsilon` for `user`; fails with
  /// FailedPrecondition (and records nothing) if the cap would be exceeded.
  Status Charge(const std::string& user, double epsilon);

  /// \brief Budget already consumed by `user` (0 for unknown users).
  double Spent(const std::string& user) const;

  /// \brief Budget still available to `user`.
  double Remaining(const std::string& user) const;

  /// \brief True when a further spend of `epsilon` would be admitted.
  bool CanCharge(const std::string& user, double epsilon) const;

  double lifetime_budget() const { return lifetime_budget_; }

  /// Number of users with non-zero spend.
  size_t num_users() const { return spent_.size(); }

 private:
  double lifetime_budget_;
  std::unordered_map<std::string, double> spent_;
};

/// \brief Epoch-aware per-user budget ledger.
///
/// Charges are admitted only when they fit the per-epoch cap AND (when
/// configured) the lifetime cap; a refused charge records nothing against
/// either. BeginEpoch moves accounting to a later epoch and clears every
/// user's per-epoch spend (rollover) — lifetime spend persists. Independent
/// ledgers share no state, so a serving engine may keep one per shard (or
/// one global one) without cross-talk.
///
/// Thread-compatible (guard externally if shared across threads).
class EpochBudgetLedger {
 public:
  /// Running totals across all users and epochs — the ledger's own
  /// flight-recorder view, always on (independent of the metrics
  /// switches) so replay reports and tests can rely on it.
  struct Totals {
    double epsilon_spent = 0.0;    ///< sum of admitted charges
    uint64_t charges = 0;          ///< admitted charges
    uint64_t denied_epoch = 0;     ///< refused: per-epoch cap
    uint64_t denied_lifetime = 0;  ///< refused: lifetime cap
  };

  /// Full serializable accounting state (for crash-safe checkpoints).
  /// Spend maps are exported sorted by user so serialization is
  /// byte-deterministic.
  struct State {
    int64_t epoch = 0;
    std::vector<std::pair<std::string, double>> epoch_spent;
    std::vector<std::pair<std::string, double>> lifetime_spent;
    Totals totals;
  };

  /// \param epoch_budget maximum epsilon per user within one epoch (> 0).
  /// \param lifetime_budget optional cumulative cap across all epochs
  ///   (> 0, and at least `epoch_budget` to be satisfiable in one epoch —
  ///   smaller values are allowed but make the epoch cap unreachable).
  /// \param metrics registry receiving the tbf_privacy_* series
  ///   (see docs/OBSERVABILITY.md); nullptr uses the process-wide one.
  explicit EpochBudgetLedger(double epoch_budget,
                             std::optional<double> lifetime_budget = std::nullopt,
                             obs::MetricRegistry* metrics = nullptr);

  /// Current epoch index (starts at 0).
  int64_t epoch() const { return epoch_; }

  /// \brief Moves to `epoch`, clearing all per-epoch spend. Jumps forward
  /// over empty epochs are fine; moving backwards fails with
  /// InvalidArgument. Re-entering the current epoch is a no-op.
  Status BeginEpoch(int64_t epoch);

  /// \brief Convenience: BeginEpoch(epoch() + 1).
  void AdvanceEpoch();

  /// \brief Records a spend of `epsilon` for `user`; fails with
  /// FailedPrecondition (recording nothing) when either the per-epoch or
  /// the lifetime cap would be exceeded.
  Status Charge(const std::string& user, double epsilon);

  /// \brief True when a further spend of `epsilon` would be admitted now.
  bool CanCharge(const std::string& user, double epsilon) const;

  /// \brief Spend of `user` within the current epoch (0 for unknown users).
  double SpentThisEpoch(const std::string& user) const;

  /// \brief Cumulative spend of `user` across all epochs.
  double SpentLifetime(const std::string& user) const;

  /// \brief Epoch headroom of `user` (also capped by lifetime headroom).
  double RemainingThisEpoch(const std::string& user) const;

  double epoch_budget() const { return epoch_budget_; }
  const std::optional<double>& lifetime_budget() const {
    return lifetime_budget_;
  }

  /// Users with non-zero lifetime spend.
  size_t num_users() const { return lifetime_spent_.size(); }

  /// Cumulative admission/denial totals (see Totals).
  const Totals& totals() const { return totals_; }

  /// \brief Largest lifetime spend across all users (0 when empty) — the
  /// chaos harness asserts this never exceeds the lifetime cap.
  double MaxLifetimeSpent() const;

  /// \brief Largest current-epoch spend across all users (0 when empty).
  double MaxEpochSpent() const;

  /// \brief Snapshot of the full accounting state, sorted by user.
  State ExportState() const;

  /// \brief Restores a state produced by ExportState. Caps are not part of
  /// the state and must match the construction parameters; the registry
  /// counters are NOT re-added (a checkpoint resume merges the saved
  /// metrics snapshot separately), only the gauges are refreshed.
  Status RestoreState(const State& state);

 private:
  double epoch_budget_;
  std::optional<double> lifetime_budget_;
  int64_t epoch_ = 0;
  std::unordered_map<std::string, double> epoch_spent_;
  std::unordered_map<std::string, double> lifetime_spent_;

  Totals totals_;
  // Registry mirrors of totals_ (Prometheus/JSONL export surface).
  obs::DoubleCounter* epsilon_spent_metric_;
  obs::Counter* charges_metric_;
  obs::Counter* denied_epoch_metric_;
  obs::Counter* denied_lifetime_metric_;
  obs::Gauge* epoch_metric_;
  obs::Gauge* users_metric_;
};

}  // namespace tbf
