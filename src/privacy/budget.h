// Privacy budget accounting.
//
// The paper analyzes a single report per user. Deployments re-report
// (drivers move, tasks are reposted); each extra report through an
// eps-Geo-I mechanism composes additively (sequential composition of
// differential privacy). This ledger tracks per-user spend against a
// lifetime cap so a client layer can refuse reports that would exceed it.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace tbf {

/// \brief Sequential composition: total budget of k eps-Geo-I reports.
double ComposedEpsilon(double epsilon_per_report, int reports);

/// \brief Reports permitted under `total_budget` at `epsilon_per_report`
/// (floor; 0 when a single report already exceeds the budget).
int MaxReports(double total_budget, double epsilon_per_report);

/// \brief Per-user privacy-spend ledger with a lifetime cap.
///
/// Thread-compatible (guard externally if shared across threads).
class PrivacyBudgetLedger {
 public:
  /// \param lifetime_budget maximum cumulative epsilon per user (> 0).
  explicit PrivacyBudgetLedger(double lifetime_budget);

  /// \brief Records a spend of `epsilon` for `user`; fails with
  /// FailedPrecondition (and records nothing) if the cap would be exceeded.
  Status Charge(const std::string& user, double epsilon);

  /// \brief Budget already consumed by `user` (0 for unknown users).
  double Spent(const std::string& user) const;

  /// \brief Budget still available to `user`.
  double Remaining(const std::string& user) const;

  /// \brief True when a further spend of `epsilon` would be admitted.
  bool CanCharge(const std::string& user, double epsilon) const;

  double lifetime_budget() const { return lifetime_budget_; }

  /// Number of users with non-zero spend.
  size_t num_users() const { return spent_.size(); }

 private:
  double lifetime_budget_;
  std::unordered_map<std::string, double> spent_;
};

}  // namespace tbf
