// Privacy mechanism interfaces (paper Def. 4).
//
// A mechanism maps a point of a metric space to an obfuscated point of the
// same space, randomly. Two families exist in this library:
//   * PointMechanism — obfuscates raw Euclidean coordinates (planar
//     Laplace baseline, privacy/planar_laplace.h), and
//   * LeafMechanism — obfuscates HST leaves (the paper's contribution,
//     core/hst_mechanism.h).

#pragma once

#include <string>

#include "common/rng.h"
#include "geo/point.h"
#include "hst/leaf_path.h"

namespace tbf {

/// \brief Randomized map from a true location to a reported location.
class PointMechanism {
 public:
  virtual ~PointMechanism() = default;

  /// Samples an obfuscated location for `truth`.
  virtual Point Obfuscate(const Point& truth, Rng* rng) const = 0;

  /// The privacy budget epsilon this mechanism was configured with.
  virtual double epsilon() const = 0;

  virtual std::string Name() const = 0;
};

/// \brief Randomized map from a true HST leaf to a reported leaf.
class LeafMechanism {
 public:
  virtual ~LeafMechanism() = default;

  virtual LeafPath Obfuscate(const LeafPath& truth, Rng* rng) const = 0;

  virtual double epsilon() const = 0;

  virtual std::string Name() const = 0;
};

/// \brief Pass-through point mechanism (no privacy). Used to measure the
/// privacy cost of the real mechanisms against a non-private floor.
class IdentityPointMechanism final : public PointMechanism {
 public:
  Point Obfuscate(const Point& truth, Rng*) const override { return truth; }
  double epsilon() const override { return 0.0; }
  std::string Name() const override { return "identity"; }
};

}  // namespace tbf
