#include "privacy/geo_check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/math.h"

namespace tbf {

std::string GeoCheckReport::ToString() const {
  std::ostringstream out;
  out << (satisfied ? "Geo-I satisfied" : "Geo-I VIOLATED")
      << "; worst slack " << worst_slack << " at (x1=" << worst_x1
      << ", x2=" << worst_x2 << ", z=" << worst_z
      << "); tightest epsilon " << tightest_epsilon;
  return out.str();
}

GeoCheckReport CheckGeoIndistinguishability(
    int num_inputs, int num_outputs,
    const std::function<double(int, int)>& log_prob,
    const std::function<double(int, int)>& distance, double epsilon,
    double tolerance) {
  GeoCheckReport report;
  report.worst_slack = -std::numeric_limits<double>::infinity();
  for (int x1 = 0; x1 < num_inputs; ++x1) {
    for (int x2 = 0; x2 < num_inputs; ++x2) {
      if (x1 == x2) continue;
      const double d = distance(x1, x2);
      for (int z = 0; z < num_outputs; ++z) {
        const double lp1 = log_prob(x1, z);
        const double lp2 = log_prob(x2, z);
        if (lp1 == kNegInf && lp2 == kNegInf) continue;
        // Both-sided ratio is covered by iterating ordered pairs.
        const double ratio = lp1 - lp2;
        const double slack = ratio - epsilon * d;
        if (slack > report.worst_slack) {
          report.worst_slack = slack;
          report.worst_x1 = x1;
          report.worst_x2 = x2;
          report.worst_z = z;
        }
        if (d > 0.0) {
          report.tightest_epsilon = std::max(report.tightest_epsilon, ratio / d);
        } else if (ratio > tolerance) {
          // Distinct inputs at distance zero must behave identically.
          report.satisfied = false;
        }
      }
    }
  }
  if (report.worst_slack == -std::numeric_limits<double>::infinity()) {
    report.worst_slack = 0.0;  // fewer than two inputs: vacuously satisfied
  }
  if (report.worst_slack > tolerance) report.satisfied = false;
  return report;
}

}  // namespace tbf
