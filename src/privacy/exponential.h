// Discrete exponential mechanism over a finite candidate point set.
//
// A beyond-paper ablation baseline: like TBF it snaps the true location to
// a published finite point set, but obfuscates with the classic exponential
// mechanism (McSherry & Talwar, FOCS'07) directly in the Euclidean metric —
// no tree. Comparing Exp-GR against TBF isolates how much of TBF's utility
// comes from the HST structure versus from discretization alone.
//
// Sampling z with probability proportional to exp(-(eps/2) d(x, z)) is
// eps-Geo-Indistinguishable w.r.t. the Euclidean metric on the candidate
// set: the weight ratio contributes eps/2 * d(x1,x2) via the triangle
// inequality and the normalizer ratio contributes the same again (verified
// exactly by tests through the Geo-I auditor).

#pragma once

#include <memory>
#include <vector>

#include "geo/kdtree.h"
#include "privacy/mechanism.h"

namespace tbf {

/// \brief eps-Geo-I mechanism whose outputs are members of a published
/// finite candidate set.
class DiscreteExponentialMechanism final : public PointMechanism {
 public:
  /// \param candidates published point set (also the output space)
  /// \param epsilon Geo-I budget per unit Euclidean distance (> 0)
  DiscreteExponentialMechanism(std::vector<Point> candidates, double epsilon);

  /// Snaps `truth` to the nearest candidate, then samples a candidate with
  /// probability proportional to exp(-(eps/2) * d(snap, z)). O(N) per call.
  Point Obfuscate(const Point& truth, Rng* rng) const override;

  /// Id of the candidate nearest to `location`.
  int NearestCandidate(const Point& location) const;

  /// Exact log M(x)(z) between candidate ids (for Geo-I audits and tests).
  double LogProbability(int x_id, int z_id) const;

  double epsilon() const override { return epsilon_; }
  std::string Name() const override { return "discrete-exponential"; }

  const std::vector<Point>& candidates() const { return candidates_; }

 private:
  std::vector<Point> candidates_;
  double epsilon_;
  std::unique_ptr<KdTree> index_;
};

}  // namespace tbf
