#include "privacy/budget.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "common/logging.h"

namespace tbf {

double ComposedEpsilon(double epsilon_per_report, int reports) {
  if (reports <= 0) return 0.0;
  return epsilon_per_report * reports;
}

int MaxReports(double total_budget, double epsilon_per_report) {
  if (epsilon_per_report <= 0.0 || total_budget <= 0.0) return 0;
  // Guard the floor against representation error at exact multiples.
  return static_cast<int>(std::floor(total_budget / epsilon_per_report + 1e-12));
}

namespace {

// Cap admission with a relative tolerance, shared by both ledgers so
// they agree on spends that reach a cap exactly despite representation
// error at exact multiples.
inline bool FitsCap(double spent, double epsilon, double cap) {
  return spent + epsilon <= cap * (1.0 + 1e-12);
}

// A chargeable epsilon is strictly positive AND finite. `epsilon <= 0.0`
// alone would let NaN through (every comparison with NaN is false) and
// +inf past it, silently corrupting every subsequent cap check.
inline bool ChargeableEpsilon(double epsilon) {
  return std::isfinite(epsilon) && epsilon > 0.0;
}

}  // namespace

PrivacyBudgetLedger::PrivacyBudgetLedger(double lifetime_budget)
    : lifetime_budget_(lifetime_budget) {
  TBF_CHECK(lifetime_budget > 0.0) << "lifetime budget must be positive";
}

Status PrivacyBudgetLedger::Charge(const std::string& user, double epsilon) {
  if (!ChargeableEpsilon(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  double& spent = spent_[user];
  if (!FitsCap(spent, epsilon, lifetime_budget_)) {
    if (spent == 0.0) spent_.erase(user);  // keep num_users() meaningful
    return Status::FailedPrecondition("budget exhausted for user " + user);
  }
  spent += epsilon;
  return Status::OK();
}

double PrivacyBudgetLedger::Spent(const std::string& user) const {
  auto it = spent_.find(user);
  return it == spent_.end() ? 0.0 : it->second;
}

double PrivacyBudgetLedger::Remaining(const std::string& user) const {
  double rest = lifetime_budget_ - Spent(user);
  return rest > 0.0 ? rest : 0.0;
}

bool PrivacyBudgetLedger::CanCharge(const std::string& user, double epsilon) const {
  return ChargeableEpsilon(epsilon) &&
         FitsCap(Spent(user), epsilon, lifetime_budget_);
}

EpochBudgetLedger::EpochBudgetLedger(double epoch_budget,
                                     std::optional<double> lifetime_budget,
                                     obs::MetricRegistry* metrics)
    : epoch_budget_(epoch_budget), lifetime_budget_(lifetime_budget) {
  TBF_CHECK(epoch_budget > 0.0) << "epoch budget must be positive";
  TBF_CHECK(!lifetime_budget || *lifetime_budget > 0.0)
      << "lifetime budget must be positive";
  if (metrics == nullptr) metrics = obs::MetricRegistry::Global();
  epsilon_spent_metric_ =
      metrics->FindOrCreateDoubleCounter("tbf_privacy_epsilon_spent_total");
  charges_metric_ = metrics->FindOrCreateCounter("tbf_privacy_charges_total");
  denied_epoch_metric_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_privacy_denials_total", "cause", "epoch"));
  denied_lifetime_metric_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_privacy_denials_total", "cause", "lifetime"));
  epoch_metric_ = metrics->FindOrCreateGauge("tbf_privacy_epoch");
  users_metric_ = metrics->FindOrCreateGauge("tbf_privacy_users");
}

Status EpochBudgetLedger::BeginEpoch(int64_t epoch) {
  if (epoch < epoch_) {
    return Status::InvalidArgument("epochs only move forward: at " +
                                   std::to_string(epoch_) + ", asked for " +
                                   std::to_string(epoch));
  }
  if (epoch > epoch_) {
    epoch_ = epoch;
    epoch_spent_.clear();
    epoch_metric_->Set(epoch);
  }
  return Status::OK();
}

void EpochBudgetLedger::AdvanceEpoch() {
  Status status = BeginEpoch(epoch_ + 1);
  TBF_CHECK(status.ok());
}

Status EpochBudgetLedger::Charge(const std::string& user, double epsilon) {
  if (!ChargeableEpsilon(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  // Injection site "budget.charge": a scheduled kExhaustBudget refuses the
  // charge exactly as a cap hit would (counted as an epoch denial).
  Status injected = TBF_FAULT_INJECT("budget.charge");
  if (!injected.ok()) {
    ++totals_.denied_epoch;
    denied_epoch_metric_->Add(1);
    return injected;
  }
  const double in_epoch = SpentThisEpoch(user);
  if (!FitsCap(in_epoch, epsilon, epoch_budget_)) {
    ++totals_.denied_epoch;
    denied_epoch_metric_->Add(1);
    return Status::FailedPrecondition("epoch budget exhausted for user " + user);
  }
  const double lifetime = SpentLifetime(user);
  if (lifetime_budget_ && !FitsCap(lifetime, epsilon, *lifetime_budget_)) {
    ++totals_.denied_lifetime;
    denied_lifetime_metric_->Add(1);
    return Status::FailedPrecondition("lifetime budget exhausted for user " +
                                      user);
  }
  epoch_spent_[user] = in_epoch + epsilon;
  lifetime_spent_[user] = lifetime + epsilon;
  totals_.epsilon_spent += epsilon;
  ++totals_.charges;
  epsilon_spent_metric_->Add(epsilon);
  charges_metric_->Add(1);
  users_metric_->Set(static_cast<int64_t>(lifetime_spent_.size()));
  return Status::OK();
}

bool EpochBudgetLedger::CanCharge(const std::string& user, double epsilon) const {
  if (!ChargeableEpsilon(epsilon)) return false;
  if (!FitsCap(SpentThisEpoch(user), epsilon, epoch_budget_)) return false;
  return !lifetime_budget_ ||
         FitsCap(SpentLifetime(user), epsilon, *lifetime_budget_);
}

double EpochBudgetLedger::SpentThisEpoch(const std::string& user) const {
  auto it = epoch_spent_.find(user);
  return it == epoch_spent_.end() ? 0.0 : it->second;
}

double EpochBudgetLedger::SpentLifetime(const std::string& user) const {
  auto it = lifetime_spent_.find(user);
  return it == lifetime_spent_.end() ? 0.0 : it->second;
}

double EpochBudgetLedger::RemainingThisEpoch(const std::string& user) const {
  double rest = epoch_budget_ - SpentThisEpoch(user);
  if (lifetime_budget_) {
    rest = std::min(rest, *lifetime_budget_ - SpentLifetime(user));
  }
  return rest > 0.0 ? rest : 0.0;
}

namespace {

double MaxSpend(const std::unordered_map<std::string, double>& spent) {
  double max_spend = 0.0;
  for (const auto& [user, eps] : spent) max_spend = std::max(max_spend, eps);
  return max_spend;
}

std::vector<std::pair<std::string, double>> SortedSpend(
    const std::unordered_map<std::string, double>& spent) {
  std::vector<std::pair<std::string, double>> out(spent.begin(), spent.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double EpochBudgetLedger::MaxLifetimeSpent() const {
  return MaxSpend(lifetime_spent_);
}

double EpochBudgetLedger::MaxEpochSpent() const {
  return MaxSpend(epoch_spent_);
}

EpochBudgetLedger::State EpochBudgetLedger::ExportState() const {
  State state;
  state.epoch = epoch_;
  state.epoch_spent = SortedSpend(epoch_spent_);
  state.lifetime_spent = SortedSpend(lifetime_spent_);
  state.totals = totals_;
  return state;
}

Status EpochBudgetLedger::RestoreState(const State& state) {
  for (const auto& [user, eps] : state.epoch_spent) {
    if (!std::isfinite(eps) || eps < 0.0) {
      return Status::InvalidArgument("ledger state: bad epoch spend for " +
                                     user);
    }
  }
  for (const auto& [user, eps] : state.lifetime_spent) {
    if (!std::isfinite(eps) || eps < 0.0) {
      return Status::InvalidArgument("ledger state: bad lifetime spend for " +
                                     user);
    }
  }
  epoch_ = state.epoch;
  epoch_spent_.clear();
  epoch_spent_.insert(state.epoch_spent.begin(), state.epoch_spent.end());
  lifetime_spent_.clear();
  lifetime_spent_.insert(state.lifetime_spent.begin(),
                         state.lifetime_spent.end());
  totals_ = state.totals;
  epoch_metric_->Set(epoch_);
  users_metric_->Set(static_cast<int64_t>(lifetime_spent_.size()));
  return Status::OK();
}

}  // namespace tbf
