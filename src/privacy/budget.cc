#include "privacy/budget.h"

#include <cmath>

#include "common/logging.h"

namespace tbf {

double ComposedEpsilon(double epsilon_per_report, int reports) {
  if (reports <= 0) return 0.0;
  return epsilon_per_report * reports;
}

int MaxReports(double total_budget, double epsilon_per_report) {
  if (epsilon_per_report <= 0.0 || total_budget <= 0.0) return 0;
  // Guard the floor against representation error at exact multiples.
  return static_cast<int>(std::floor(total_budget / epsilon_per_report + 1e-12));
}

PrivacyBudgetLedger::PrivacyBudgetLedger(double lifetime_budget)
    : lifetime_budget_(lifetime_budget) {
  TBF_CHECK(lifetime_budget > 0.0) << "lifetime budget must be positive";
}

Status PrivacyBudgetLedger::Charge(const std::string& user, double epsilon) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  double& spent = spent_[user];
  if (spent + epsilon > lifetime_budget_ * (1.0 + 1e-12)) {
    if (spent == 0.0) spent_.erase(user);  // keep num_users() meaningful
    return Status::FailedPrecondition("budget exhausted for user " + user);
  }
  spent += epsilon;
  return Status::OK();
}

double PrivacyBudgetLedger::Spent(const std::string& user) const {
  auto it = spent_.find(user);
  return it == spent_.end() ? 0.0 : it->second;
}

double PrivacyBudgetLedger::Remaining(const std::string& user) const {
  double rest = lifetime_budget_ - Spent(user);
  return rest > 0.0 ? rest : 0.0;
}

bool PrivacyBudgetLedger::CanCharge(const std::string& user, double epsilon) const {
  return epsilon > 0.0 &&
         Spent(user) + epsilon <= lifetime_budget_ * (1.0 + 1e-12);
}

}  // namespace tbf
