// Geo-Indistinguishability verification for discrete mechanisms.
//
// Paper Def. 7: M is eps-Geo-I iff for all x1, x2 and outputs z,
//   M(x1)(z) <= exp(eps * d(x1, x2)) * M(x2)(z).
// For mechanisms with an analytic discrete output distribution (the HST
// mechanism), this can be checked *exactly* in log space. Tests and the
// privacy_explorer example use this module; it is the executable form of
// the paper's Theorem 1.

#pragma once

#include <functional>
#include <string>
#include <vector>

namespace tbf {

/// \brief Result of a Geo-I audit over a discrete input/output space.
struct GeoCheckReport {
  bool satisfied = true;

  /// Worst slack observed: max over (x1,x2,z) of
  /// log M(x1)(z) - log M(x2)(z) - eps * d(x1,x2). Negative or ~0 when the
  /// mechanism satisfies eps-Geo-I; the margin to 0 shows tightness.
  double worst_slack = 0.0;

  /// Argmax triple of worst_slack (input indexes and output index).
  int worst_x1 = -1;
  int worst_x2 = -1;
  int worst_z = -1;

  /// Smallest eps' for which the mechanism would be eps'-Geo-I (the
  /// max over pairs of (log-ratio / distance)); equals the mechanism's
  /// effective privacy level.
  double tightest_epsilon = 0.0;

  std::string ToString() const;
};

/// \brief Audits a discrete mechanism given as a log-probability oracle.
///
/// \param num_inputs number of distinct secret inputs
/// \param num_outputs number of outputs
/// \param log_prob log M(x)(z); must be a proper distribution per x
/// \param distance d(x1, x2) over inputs
/// \param epsilon the budget being claimed
/// \param tolerance numerical slack allowed above 0 before failing
GeoCheckReport CheckGeoIndistinguishability(
    int num_inputs, int num_outputs,
    const std::function<double(int, int)>& log_prob,
    const std::function<double(int, int)>& distance, double epsilon,
    double tolerance = 1e-9);

}  // namespace tbf
