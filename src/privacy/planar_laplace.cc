#include "privacy/planar_laplace.h"

#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace tbf {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

PlanarLaplaceMechanism::PlanarLaplaceMechanism(double epsilon,
                                               std::optional<BBox> clamp_region)
    : epsilon_(epsilon), clamp_region_(clamp_region) {
  TBF_CHECK(epsilon > 0.0) << "epsilon must be positive";
}

double PlanarLaplaceMechanism::RadialCdf(double r) const {
  if (r <= 0.0) return 0.0;
  return 1.0 - (1.0 + epsilon_ * r) * std::exp(-epsilon_ * r);
}

double PlanarLaplaceMechanism::RadialCdfInverse(double p) const {
  TBF_CHECK(p >= 0.0 && p < 1.0) << "p must be in [0, 1)";
  if (p == 0.0) return 0.0;
  // r = -(1/eps) * (W_{-1}((p-1)/e) + 1); (p-1)/e is in [-1/e, 0).
  double w = LambertWm1((p - 1.0) / std::exp(1.0));
  return -(w + 1.0) / epsilon_;
}

Point PlanarLaplaceMechanism::Obfuscate(const Point& truth, Rng* rng) const {
  double theta = rng->Uniform(0.0, 2.0 * kPi);
  double r = RadialCdfInverse(rng->Uniform01());
  Point noisy{truth.x + r * std::cos(theta), truth.y + r * std::sin(theta)};
  if (clamp_region_) return clamp_region_->Clamp(noisy);
  return noisy;
}

}  // namespace tbf
