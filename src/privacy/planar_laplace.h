// Planar Laplace mechanism (Andres et al., "Geo-Indistinguishability:
// Differential Privacy for Location-Based Systems", CCS 2013).
//
// The state-of-the-art baseline the paper compares against (Lap-GR, Lap-HG,
// and the noise source inside the Prob baseline). Density at displacement r:
// p(r, theta) = eps^2 / (2 pi) * exp(-eps r); sampled by drawing
// theta ~ U[0, 2 pi) and r via the inverse radial CDF
//   C_eps^{-1}(p) = -(1/eps) * (W_{-1}((p - 1)/e) + 1).

#pragma once

#include <optional>
#include <string>

#include "geo/bbox.h"
#include "privacy/mechanism.h"

namespace tbf {

/// \brief eps-Geo-Indistinguishable additive noise in the plane.
class PlanarLaplaceMechanism final : public PointMechanism {
 public:
  /// \param epsilon privacy budget per unit distance (> 0).
  /// \param clamp_region when set, obfuscated points are clamped back into
  ///        this region (the remapping used in practice so reports stay in
  ///        the service area; a post-processing step, so Geo-I is kept).
  explicit PlanarLaplaceMechanism(double epsilon,
                                  std::optional<BBox> clamp_region = std::nullopt);

  Point Obfuscate(const Point& truth, Rng* rng) const override;

  double epsilon() const override { return epsilon_; }

  std::string Name() const override { return "planar-laplace"; }

  /// \brief Radial CDF: probability that the noise magnitude is <= r.
  /// C_eps(r) = 1 - (1 + eps r) exp(-eps r).
  double RadialCdf(double r) const;

  /// \brief Inverse radial CDF via Lambert W_{-1}; p in [0, 1).
  double RadialCdfInverse(double p) const;

 private:
  double epsilon_;
  std::optional<BBox> clamp_region_;
};

}  // namespace tbf
