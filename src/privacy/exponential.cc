#include "privacy/exponential.h"

#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace tbf {

DiscreteExponentialMechanism::DiscreteExponentialMechanism(
    std::vector<Point> candidates, double epsilon)
    : candidates_(std::move(candidates)), epsilon_(epsilon) {
  TBF_CHECK(!candidates_.empty()) << "candidate set must be non-empty";
  TBF_CHECK(epsilon > 0.0) << "epsilon must be positive";
  index_ = std::make_unique<KdTree>(candidates_);
}

int DiscreteExponentialMechanism::NearestCandidate(const Point& location) const {
  return index_->NearestNeighbor(location);
}

Point DiscreteExponentialMechanism::Obfuscate(const Point& truth, Rng* rng) const {
  const Point snap = candidates_[static_cast<size_t>(NearestCandidate(truth))];
  // Single pass: compute unnormalized weights and their total, then invert
  // the empirical CDF with one uniform draw (second pass).
  const double half_eps = epsilon_ / 2.0;
  double total = 0.0;
  std::vector<double> weights(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    weights[i] = std::exp(-half_eps * EuclideanDistance(snap, candidates_[i]));
    total += weights[i];
  }
  double target = rng->Uniform01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    acc += weights[i];
    if (target < acc) return candidates_[i];
  }
  return candidates_.back();
}

double DiscreteExponentialMechanism::LogProbability(int x_id, int z_id) const {
  const Point& x = candidates_[static_cast<size_t>(x_id)];
  const double half_eps = epsilon_ / 2.0;
  std::vector<double> log_weights(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    log_weights[i] = -half_eps * EuclideanDistance(x, candidates_[i]);
  }
  return log_weights[static_cast<size_t>(z_id)] - LogSumExp(log_weights);
}

}  // namespace tbf
