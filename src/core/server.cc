#include "core/server.h"

#include <type_traits>

namespace tbf {

Result<TbfServer> TbfServer::Create(std::shared_ptr<const CompleteHst> tree,
                                    const TbfServerOptions& options) {
  if (tree == nullptr) return Status::InvalidArgument("tree must not be null");
  if (options.lifetime_budget && *options.lifetime_budget <= 0.0) {
    return Status::InvalidArgument("lifetime budget must be positive");
  }
  return TbfServer(std::move(tree), options);
}

TbfServer::TbfServer(std::shared_ptr<const CompleteHst> tree,
                     const TbfServerOptions& options)
    : tree_(std::move(tree)),
      options_(options),
      index_(tree_->depth(), tree_->arity()),
      rng_(options.seed) {
  packed_ = tree_->codec() != nullptr;
  if (options_.lifetime_budget) {
    ledger_ = std::make_unique<PrivacyBudgetLedger>(*options_.lifetime_budget);
  }
}

Status ValidateReportedLeaf(const CompleteHst& tree, const LeafPath& leaf) {
  if (static_cast<int>(leaf.size()) != tree.depth()) {
    return Status::InvalidArgument("leaf depth does not match the published tree");
  }
  for (char16_t digit : leaf) {
    if (static_cast<int>(digit) >= tree.arity()) {
      return Status::InvalidArgument("leaf digit exceeds the published arity");
    }
  }
  return Status::OK();
}

Status ValidateReportedLeafCode(const CompleteHst& tree, LeafCode code) {
  const LeafCodec* codec = tree.codec();
  if (codec == nullptr) {
    return Status::InvalidArgument(
        "published tree has no packed-code codec; report a leaf path");
  }
  // Bits below the last digit must be zero, or two distinct codes could
  // name the same leaf and canonical comparisons would drift.
  const int low = 64 - codec->bits_per_digit() * codec->depth();
  if (low > 0 && (code & ((uint64_t{1} << low) - 1)) != 0) {
    return Status::InvalidArgument("leaf code has stray bits below the leaf");
  }
  // For power-of-two arity every digit field value is a valid digit;
  // otherwise each field must be range-checked.
  if ((tree.arity() & (tree.arity() - 1)) != 0) {
    for (int j = 0; j < codec->depth(); ++j) {
      if (codec->Digit(code, j) >= tree.arity()) {
        return Status::InvalidArgument("leaf code digit exceeds the published arity");
      }
    }
  }
  return Status::OK();
}

Status TbfServer::ChargeIfRequired(const std::string& user,
                                   std::optional<double> declared_epsilon) {
  if (ledger_ == nullptr) return Status::OK();
  if (!declared_epsilon) {
    return Status::InvalidArgument(
        "budget enforcement is on: reports must declare their epsilon");
  }
  return ledger_->Charge(user, *declared_epsilon);
}

int TbfServer::AcquireIndexId(const std::string& worker_id) {
  if (!free_index_ids_.empty()) {
    const int index_id = free_index_ids_.back();
    free_index_ids_.pop_back();
    worker_by_index_id_[static_cast<size_t>(index_id)] = worker_id;
    return index_id;
  }
  const int index_id = static_cast<int>(worker_by_index_id_.size());
  worker_by_index_id_.push_back(worker_id);
  return index_id;
}

void TbfServer::ReleaseIndexId(int index_id) {
  worker_by_index_id_[static_cast<size_t>(index_id)].clear();
  free_index_ids_.push_back(index_id);
}

template <typename Key>
Status TbfServer::RegisterImpl(const std::string& worker_id, const Key& key,
                               std::optional<double> declared_epsilon) {
  // Charge first: a refused charge must leave the pool untouched.
  TBF_RETURN_NOT_OK(ChargeIfRequired(worker_id, declared_epsilon));
  constexpr bool kPacked = std::is_same_v<Key, LeafCode>;
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) {
    // Relocation: drop the old report before inserting the new one.
    if constexpr (kPacked) {
      index_.Remove(it->second.code, it->second.index_id);
    } else {
      index_.Remove(it->second.leaf, it->second.index_id);
    }
    ReleaseIndexId(it->second.index_id);
  }
  const int index_id = AcquireIndexId(worker_id);
  index_.Insert(key, index_id);
  WorkerState& state = workers_[worker_id];
  if constexpr (kPacked) {
    state.code = key;
  } else {
    state.leaf = key;
  }
  state.index_id = index_id;
  return Status::OK();
}

Status TbfServer::RegisterWorker(const std::string& worker_id,
                                 const LeafPath& leaf,
                                 std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeaf(*tree_, leaf));
  if (packed_) {
    return RegisterImpl(worker_id, tree_->codec()->Pack(leaf), declared_epsilon);
  }
  return RegisterImpl(worker_id, leaf, declared_epsilon);
}

Status TbfServer::RegisterWorker(const std::string& worker_id, LeafCode code,
                                 std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeafCode(*tree_, code));
  return RegisterImpl(worker_id, code, declared_epsilon);
}

Status TbfServer::UnregisterWorker(const std::string& worker_id) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return Status::NotFound("unknown worker " + worker_id);
  if (packed_) {
    index_.Remove(it->second.code, it->second.index_id);
  } else {
    index_.Remove(it->second.leaf, it->second.index_id);
  }
  ReleaseIndexId(it->second.index_id);
  workers_.erase(it);
  return Status::OK();
}

template <typename Key>
Result<DispatchResult> TbfServer::SubmitImpl(
    const std::string& task_id, const Key& key,
    std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ChargeIfRequired(task_id, declared_epsilon));
  DispatchResult result;
  auto nearest = options_.tie_break == HstTieBreak::kCanonical
                     ? index_.Nearest(key)
                     : index_.NearestUniform(key, &rng_);
  if (!nearest) return result;  // no worker available: task unassigned

  const std::string worker_id =
      worker_by_index_id_[static_cast<size_t>(nearest->first)];
  const WorkerState& state = workers_.at(worker_id);
  if constexpr (std::is_same_v<Key, LeafCode>) {
    index_.Remove(state.code, state.index_id);
  } else {
    index_.Remove(state.leaf, state.index_id);
  }
  ReleaseIndexId(state.index_id);
  workers_.erase(worker_id);  // assigned: must register anew to serve again
  result.worker = worker_id;
  result.reported_tree_distance = tree_->TreeDistanceForLcaLevel(nearest->second);
  ++assigned_tasks_;
  return result;
}

Result<DispatchResult> TbfServer::SubmitTask(
    const std::string& task_id, const LeafPath& leaf,
    std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeaf(*tree_, leaf));
  if (packed_) {
    return SubmitImpl(task_id, tree_->codec()->Pack(leaf), declared_epsilon);
  }
  return SubmitImpl(task_id, leaf, declared_epsilon);
}

Result<DispatchResult> TbfServer::SubmitTask(
    const std::string& task_id, LeafCode code,
    std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeafCode(*tree_, code));
  return SubmitImpl(task_id, code, declared_epsilon);
}

std::vector<Status> TbfServer::RegisterWorkers(
    const std::vector<LeafReport>& batch) {
  std::vector<Status> statuses;
  statuses.reserve(batch.size());
  for (const LeafReport& report : batch) {
    statuses.push_back(
        RegisterWorker(report.user_id, report.leaf, report.declared_epsilon));
  }
  return statuses;
}

std::vector<BatchDispatchOutcome> TbfServer::SubmitTasks(
    const std::vector<LeafReport>& batch) {
  std::vector<BatchDispatchOutcome> outcomes;
  outcomes.reserve(batch.size());
  for (const LeafReport& report : batch) {
    BatchDispatchOutcome outcome;
    Result<DispatchResult> dispatched =
        SubmitTask(report.user_id, report.leaf, report.declared_epsilon);
    if (dispatched.ok()) {
      outcome.result = std::move(dispatched).MoveValueUnsafe();
    } else {
      outcome.status = dispatched.status();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<Status> TbfServer::RegisterWorkers(
    std::span<const LeafCodeReport> batch) {
  std::vector<Status> statuses;
  statuses.reserve(batch.size());
  for (const LeafCodeReport& report : batch) {
    statuses.push_back(
        RegisterWorker(report.user_id, report.code, report.declared_epsilon));
  }
  return statuses;
}

std::vector<BatchDispatchOutcome> TbfServer::SubmitTasks(
    std::span<const LeafCodeReport> batch) {
  std::vector<BatchDispatchOutcome> outcomes;
  outcomes.reserve(batch.size());
  for (const LeafCodeReport& report : batch) {
    BatchDispatchOutcome outcome;
    Result<DispatchResult> dispatched =
        SubmitTask(report.user_id, report.code, report.declared_epsilon);
    if (dispatched.ok()) {
      outcome.result = std::move(dispatched).MoveValueUnsafe();
    } else {
      outcome.status = dispatched.status();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace tbf
