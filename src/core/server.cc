#include "core/server.h"

namespace tbf {

Result<TbfServer> TbfServer::Create(std::shared_ptr<const CompleteHst> tree,
                                    const TbfServerOptions& options) {
  if (tree == nullptr) return Status::InvalidArgument("tree must not be null");
  if (options.lifetime_budget && *options.lifetime_budget <= 0.0) {
    return Status::InvalidArgument("lifetime budget must be positive");
  }
  return TbfServer(std::move(tree), options);
}

TbfServer::TbfServer(std::shared_ptr<const CompleteHst> tree,
                     const TbfServerOptions& options)
    : tree_(std::move(tree)),
      options_(options),
      index_(tree_->depth(), tree_->arity()),
      rng_(options.seed) {
  if (options_.lifetime_budget) {
    ledger_ = std::make_unique<PrivacyBudgetLedger>(*options_.lifetime_budget);
  }
}

Status TbfServer::ChargeIfRequired(const std::string& user,
                                   std::optional<double> declared_epsilon) {
  if (ledger_ == nullptr) return Status::OK();
  if (!declared_epsilon) {
    return Status::InvalidArgument(
        "budget enforcement is on: reports must declare their epsilon");
  }
  return ledger_->Charge(user, *declared_epsilon);
}

Status TbfServer::RegisterWorker(const std::string& worker_id,
                                 const LeafPath& leaf,
                                 std::optional<double> declared_epsilon) {
  if (static_cast<int>(leaf.size()) != tree_->depth()) {
    return Status::InvalidArgument("leaf depth does not match the published tree");
  }
  // Charge first: a refused charge must leave the pool untouched.
  TBF_RETURN_NOT_OK(ChargeIfRequired(worker_id, declared_epsilon));
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) {
    // Relocation: drop the old report before inserting the new one.
    index_.Remove(it->second.leaf, it->second.index_id);
    worker_by_index_id_[static_cast<size_t>(it->second.index_id)].clear();
  }
  int index_id = static_cast<int>(worker_by_index_id_.size());
  worker_by_index_id_.push_back(worker_id);
  index_.Insert(leaf, index_id);
  workers_[worker_id] = WorkerState{leaf, index_id};
  return Status::OK();
}

Status TbfServer::UnregisterWorker(const std::string& worker_id) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return Status::NotFound("unknown worker " + worker_id);
  index_.Remove(it->second.leaf, it->second.index_id);
  worker_by_index_id_[static_cast<size_t>(it->second.index_id)].clear();
  workers_.erase(it);
  return Status::OK();
}

Result<DispatchResult> TbfServer::SubmitTask(
    const std::string& task_id, const LeafPath& leaf,
    std::optional<double> declared_epsilon) {
  if (static_cast<int>(leaf.size()) != tree_->depth()) {
    return Status::InvalidArgument("leaf depth does not match the published tree");
  }
  TBF_RETURN_NOT_OK(ChargeIfRequired(task_id, declared_epsilon));
  DispatchResult result;
  auto nearest = options_.tie_break == HstTieBreak::kCanonical
                     ? index_.Nearest(leaf)
                     : index_.NearestUniform(leaf, &rng_);
  if (!nearest) return result;  // no worker available: task unassigned

  const std::string worker_id =
      worker_by_index_id_[static_cast<size_t>(nearest->first)];
  const WorkerState& state = workers_.at(worker_id);
  index_.Remove(state.leaf, state.index_id);
  worker_by_index_id_[static_cast<size_t>(state.index_id)].clear();
  workers_.erase(worker_id);  // assigned: must register anew to serve again
  result.worker = worker_id;
  result.reported_tree_distance = tree_->TreeDistanceForLcaLevel(nearest->second);
  ++assigned_tasks_;
  return result;
}

}  // namespace tbf
