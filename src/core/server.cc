#include "core/server.h"

namespace tbf {

Result<TbfServer> TbfServer::Create(std::shared_ptr<const CompleteHst> tree,
                                    const TbfServerOptions& options) {
  if (tree == nullptr) return Status::InvalidArgument("tree must not be null");
  if (options.lifetime_budget && *options.lifetime_budget <= 0.0) {
    return Status::InvalidArgument("lifetime budget must be positive");
  }
  return TbfServer(std::move(tree), options);
}

TbfServer::TbfServer(std::shared_ptr<const CompleteHst> tree,
                     const TbfServerOptions& options)
    : tree_(std::move(tree)),
      options_(options),
      index_(tree_->depth(), tree_->arity()),
      rng_(options.seed) {
  if (options_.lifetime_budget) {
    ledger_ = std::make_unique<PrivacyBudgetLedger>(*options_.lifetime_budget);
  }
}

Status ValidateReportedLeaf(const CompleteHst& tree, const LeafPath& leaf) {
  if (static_cast<int>(leaf.size()) != tree.depth()) {
    return Status::InvalidArgument("leaf depth does not match the published tree");
  }
  for (char16_t digit : leaf) {
    if (static_cast<int>(digit) >= tree.arity()) {
      return Status::InvalidArgument("leaf digit exceeds the published arity");
    }
  }
  return Status::OK();
}

Status TbfServer::ChargeIfRequired(const std::string& user,
                                   std::optional<double> declared_epsilon) {
  if (ledger_ == nullptr) return Status::OK();
  if (!declared_epsilon) {
    return Status::InvalidArgument(
        "budget enforcement is on: reports must declare their epsilon");
  }
  return ledger_->Charge(user, *declared_epsilon);
}

int TbfServer::AcquireIndexId(const std::string& worker_id) {
  if (!free_index_ids_.empty()) {
    const int index_id = free_index_ids_.back();
    free_index_ids_.pop_back();
    worker_by_index_id_[static_cast<size_t>(index_id)] = worker_id;
    return index_id;
  }
  const int index_id = static_cast<int>(worker_by_index_id_.size());
  worker_by_index_id_.push_back(worker_id);
  return index_id;
}

void TbfServer::ReleaseIndexId(int index_id) {
  worker_by_index_id_[static_cast<size_t>(index_id)].clear();
  free_index_ids_.push_back(index_id);
}

Status TbfServer::RegisterWorker(const std::string& worker_id,
                                 const LeafPath& leaf,
                                 std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeaf(*tree_, leaf));
  // Charge first: a refused charge must leave the pool untouched.
  TBF_RETURN_NOT_OK(ChargeIfRequired(worker_id, declared_epsilon));
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) {
    // Relocation: drop the old report before inserting the new one.
    index_.Remove(it->second.leaf, it->second.index_id);
    ReleaseIndexId(it->second.index_id);
  }
  const int index_id = AcquireIndexId(worker_id);
  index_.Insert(leaf, index_id);
  workers_[worker_id] = WorkerState{leaf, index_id};
  return Status::OK();
}

Status TbfServer::UnregisterWorker(const std::string& worker_id) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return Status::NotFound("unknown worker " + worker_id);
  index_.Remove(it->second.leaf, it->second.index_id);
  ReleaseIndexId(it->second.index_id);
  workers_.erase(it);
  return Status::OK();
}

Result<DispatchResult> TbfServer::SubmitTask(
    const std::string& task_id, const LeafPath& leaf,
    std::optional<double> declared_epsilon) {
  TBF_RETURN_NOT_OK(ValidateReportedLeaf(*tree_, leaf));
  TBF_RETURN_NOT_OK(ChargeIfRequired(task_id, declared_epsilon));
  DispatchResult result;
  auto nearest = options_.tie_break == HstTieBreak::kCanonical
                     ? index_.Nearest(leaf)
                     : index_.NearestUniform(leaf, &rng_);
  if (!nearest) return result;  // no worker available: task unassigned

  const std::string worker_id =
      worker_by_index_id_[static_cast<size_t>(nearest->first)];
  const WorkerState& state = workers_.at(worker_id);
  index_.Remove(state.leaf, state.index_id);
  ReleaseIndexId(state.index_id);
  workers_.erase(worker_id);  // assigned: must register anew to serve again
  result.worker = worker_id;
  result.reported_tree_distance = tree_->TreeDistanceForLcaLevel(nearest->second);
  ++assigned_tasks_;
  return result;
}

std::vector<Status> TbfServer::RegisterWorkers(
    const std::vector<LeafReport>& batch) {
  std::vector<Status> statuses;
  statuses.reserve(batch.size());
  for (const LeafReport& report : batch) {
    statuses.push_back(
        RegisterWorker(report.user_id, report.leaf, report.declared_epsilon));
  }
  return statuses;
}

std::vector<BatchDispatchOutcome> TbfServer::SubmitTasks(
    const std::vector<LeafReport>& batch) {
  std::vector<BatchDispatchOutcome> outcomes;
  outcomes.reserve(batch.size());
  for (const LeafReport& report : batch) {
    BatchDispatchOutcome outcome;
    Result<DispatchResult> dispatched =
        SubmitTask(report.user_id, report.leaf, report.declared_epsilon);
    if (dispatched.ok()) {
      outcome.result = std::move(dispatched).MoveValueUnsafe();
    } else {
      outcome.status = dispatched.status();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace tbf
