// The paper's privacy mechanism on the complete c-ary HST (Sec. III-C/D).
//
// Given a true leaf x, a leaf z whose LCA with x sits at level i is chosen
// with probability wt_i / WT, where
//   wt_0 = 1,  wt_i = exp(eps_T * (4 - 2^{i+2}))   (eps_T in tree units),
//   WT   = wt_0 + sum_{i=1..D} c^{i-1} (c-1) wt_i.
// Theorem 1: this is eps-Geo-Indistinguishable w.r.t. the tree metric.
//
// Three samplers are provided, all drawing the identical distribution:
//   * SampleNaive    — Algorithm 2: enumerates all c^D leaves, O(c^D); only
//     feasible for small trees, kept as the reference for tests.
//   * Obfuscate      — Algorithm 3: the random-walk sampler, O(D) Bernoulli
//     draws; proven (Theorem 2, re-verified by tests here) to produce the
//     identical distribution. ObfuscateCodeWalk is the same walk operating
//     on packed LeafCodes, draw-for-draw identical.
//   * ObfuscateCode  — the serving fast path: one Uniform01() inverse-CDF
//     draw against the precomputed level marginal (binary search over a
//     cumulative table), then the suffix digits of the packed code are
//     rewritten in place — for power-of-two arity from a single 64-bit
//     random word with shift/mask, so a sample costs O(log D) + O(1) rng
//     draws and zero heap allocations at any depth.
//
// All probability math is in log space: wt_i underflows double by level ~6
// at eps_T = 1, but log wt_i is exact at any depth.

#pragma once

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "hst/complete_hst.h"
#include "hst/leaf_code.h"
#include "hst/leaf_path.h"
#include "obs/metrics.h"
#include "privacy/mechanism.h"

namespace tbf {

/// \brief Which sampler implementation draws mechanism outputs on the
/// batched/serving paths (the LeafPath Obfuscate always walks).
enum class SamplerKind {
  /// Algorithm 3 Bernoulli walk — the golden reference; default, so every
  /// existing golden/churn fixture keeps its draw sequence.
  kWalk,
  /// Single-draw inverse-CDF over the level marginal on packed codes —
  /// same distribution, O(1) rng draws per sample (chi-square verified).
  kInverseCdf,
  /// Timing-oblivious sampler: same distribution again, but every sample
  /// consumes exactly depth + 2 rng words and executes an identical
  /// fixed-trip-count instruction schedule no matter which leaf is the
  /// truth or which level is drawn, so neither wall-clock nor trip counts
  /// leak the secret (tests/privacy/oblivious_invariance_test.cc).
  kOblivious,
};

/// \brief Executed-operation tally of one ObfuscateCodeOblivious call,
/// filled by the probed overload. The invariance harness asserts these
/// are identical across every possible true leaf of a fixed tree shape —
/// together with the Rng draw_count() delta this is the machine-checkable
/// statement of the sampler's obliviousness.
struct ObliviousTally {
  uint64_t level_scan_iters = 0;  ///< full-cumulative-table scan steps
  uint64_t descent_iters = 0;     ///< digit positions rewritten/kept
  uint64_t select_ops = 0;        ///< branchless three-way digit selects
  uint64_t rng_words = 0;         ///< 64-bit words consumed

  friend bool operator==(const ObliviousTally& a, const ObliviousTally& b) {
    return a.level_scan_iters == b.level_scan_iters &&
           a.descent_iters == b.descent_iters &&
           a.select_ops == b.select_ops && a.rng_words == b.rng_words;
  }
  friend bool operator!=(const ObliviousTally& a, const ObliviousTally& b) {
    return !(a == b);
  }
};

/// \brief eps-Geo-I mechanism over the leaves of a complete c-ary HST.
///
/// The object is immutable after construction and thread-safe for
/// concurrent Obfuscate calls with distinct Rngs.
class HstMechanism final : public LeafMechanism {
 public:
  /// \brief Builds the mechanism for `tree` with budget `epsilon`.
  ///
  /// `epsilon` is expressed per *metric* unit (same units as the points the
  /// tree was built over); the guarantee is
  ///   M(x1)(z) <= exp(epsilon * dT(x1, x2)) * M(x2)(z)
  /// with dT in metric units, i.e. exactly the paper's Theorem 1 modulo the
  /// internal normalization scale.
  static Result<HstMechanism> Build(const CompleteHst& tree, double epsilon);

  /// \brief Algorithm 3: random-walk sampling, O(D).
  LeafPath Obfuscate(const LeafPath& truth, Rng* rng) const override;

  /// \brief Fast sampler on packed codes: one Uniform01() picks the LCA
  /// ("turn") level by inverse CDF over the precomputed level marginal,
  /// then the suffix digits are rewritten directly in the 64-bit word (for
  /// power-of-two arity from one extra random word). Same distribution as
  /// Obfuscate (chi-square + marginal tests), O(1) rng draws, no
  /// allocations. Requires codec() != nullptr (CHECKed).
  LeafCode ObfuscateCode(LeafCode truth, Rng* rng) const;

  /// \brief Algorithm 3 on packed codes: consumes exactly the same rng
  /// draws as Obfuscate on the unpacked path, so for any seed
  /// ObfuscateCodeWalk(Pack(x)) == Pack(Obfuscate(x)) — the golden
  /// reference identity the serve pipeline leans on. Requires codec().
  LeafCode ObfuscateCodeWalk(LeafCode truth, Rng* rng) const;

  /// \brief Timing-oblivious sampler on packed codes: the same exact
  /// distribution as ObfuscateCode, drawn through a schedule whose trip
  /// counts, rng-word consumption (exactly depth + 2 words) and executed
  /// operations are independent of the true leaf AND of the level drawn:
  /// the level comes from a full-table scan with no early exit, the
  /// first rewritten digit folds the != truth constraint in arithmetically
  /// (rejection-free Lemire-style bounded reduction, all arities), and the
  /// descent writes every digit position through branchless mask selects.
  /// An observer timing the call, counting its branches or tracing its rng
  /// learns nothing beyond the tree shape. Requires codec() (CHECKed).
  LeafCode ObfuscateCodeOblivious(LeafCode truth, Rng* rng) const;

  /// \brief Instrumented variant filling `tally` with the executed
  /// operation counts (identical draws and outputs to the plain overload
  /// for the same rng state; the probe is compiled separately so the
  /// serving path pays nothing for it).
  LeafCode ObfuscateCodeOblivious(LeafCode truth, Rng* rng,
                                  ObliviousTally* tally) const;

  /// \brief Dispatches to the sampler selected by `kind`.
  LeafCode ObfuscateCodeWith(LeafCode truth, Rng* rng, SamplerKind kind) const {
    switch (kind) {
      case SamplerKind::kWalk:
        return ObfuscateCodeWalk(truth, rng);
      case SamplerKind::kInverseCdf:
        return ObfuscateCode(truth, rng);
      case SamplerKind::kOblivious:
        return ObfuscateCodeOblivious(truth, rng);
    }
    return ObfuscateCodeWalk(truth, rng);  // unreachable
  }

  /// \brief Algorithm 2: enumerate-all-leaves sampling, O(c^D).
  /// Fails when the complete tree has more than `max_leaves` leaves.
  Result<LeafPath> SampleNaive(const LeafPath& truth, Rng* rng,
                               double max_leaves = 1 << 20) const;

  /// \brief Exact log M(x)(z) from the closed form wt_{lvl(x,z)} / WT.
  double LogProbability(const LeafPath& x, const LeafPath& z) const;

  /// \brief Exact M(x)(z).
  double Probability(const LeafPath& x, const LeafPath& z) const;

  /// \brief Exact M(x)(z) on packed codes (codec() must be non-null).
  double LogProbability(LeafCode x, LeafCode z) const;
  double Probability(LeafCode x, LeafCode z) const;

  /// \brief Probability that the output's LCA with the truth is at `level`
  /// (aggregated over the whole sibling set L_level): |L_i| * wt_i / WT.
  double LevelProbability(int level) const;

  /// \brief log wt_i (wt in the paper's Eq. 3/4).
  double LogWeight(int level) const;

  /// \brief log WT.
  double LogTotalWeight() const { return log_total_weight_; }

  /// \brief Upward-continuation probability pu_i of the random walk at
  /// level i (Sec. III-D); pu_D = 0.
  double UpwardProbability(int level) const;

  /// \brief Probability that Algorithm 3 walks the specific up-then-down
  /// path from `x` to `z`; equals Probability(x, z) by Theorem 2 (verified
  /// in tests).
  double WalkProbability(const LeafPath& x, const LeafPath& z) const;

  /// \brief Enumerates every leaf of the complete tree in lexicographic
  /// digit order. Only valid when c^D <= max_leaves (else error).
  Result<std::vector<LeafPath>> EnumerateLeaves(double max_leaves = 1 << 20) const;

  double epsilon() const override { return epsilon_metric_; }

  /// Epsilon converted to tree units (epsilon / tree scale), the eps that
  /// appears in the weight formulas.
  double epsilon_tree() const { return epsilon_tree_; }

  int depth() const { return depth_; }
  int arity() const { return arity_; }

  /// \brief Codec of the packed-code sampler API, or nullptr when the tree
  /// shape exceeds 64 bits (then only the LeafPath samplers are usable).
  const LeafCodec* codec() const { return codec_ ? &*codec_ : nullptr; }

  std::string Name() const override { return "hst-mechanism"; }

 private:
  HstMechanism() = default;

  // Buckets of the inverse-CDF guide table (power of two: u * kGuideSize
  // compiles to a multiply).
  static constexpr int kGuideSize = 256;

  // Turn level of the fast sampler: smallest k with cum_level_prob_[k] > u.
  int TurnLevelFromUniform(double u) const;

  // Shared body of the oblivious sampler; Probe is either a no-op (plain
  // overload) or an ObliviousTally recorder (probed overload).
  template <typename Probe>
  LeafCode ObfuscateCodeObliviousImpl(LeafCode truth, Rng* rng,
                                      Probe probe) const;

  int depth_ = 0;
  int arity_ = 2;
  bool pow2_arity_ = false;
  double epsilon_metric_ = 0.0;
  double epsilon_tree_ = 0.0;
  std::vector<double> log_weight_;       // log wt_i, i in [0, D]
  std::vector<double> log_level_total_;  // log(|L_i| * wt_i), i in [0, D]
  std::vector<double> log_tail_weight_;  // log tw_k, k in [0, D+1] (last = -inf)
  std::vector<double> upward_prob_;      // pu_i, i in [0, D]
  std::vector<double> log_upward_prefix_;  // sum_{j<i} log pu_j, i in [0, D]
  std::vector<double> cum_level_prob_;   // inverse-CDF table over levels
  std::vector<int> level_guide_;         // bucket -> first candidate level
  double log_total_weight_ = 0.0;        // log WT
  std::optional<LeafCodec> codec_;       // set when the shape fits 64 bits

  // Draw counters by sampler kind (tbf_mechanism_draws_total{sampler=...}
  // in the process-wide registry): one relaxed striped increment per
  // sample, compiled out under TBF_METRICS_DISABLED.
  obs::Counter* draws_walk_ = nullptr;
  obs::Counter* draws_inverse_cdf_ = nullptr;
  obs::Counter* draws_oblivious_ = nullptr;
  obs::Counter* draws_naive_ = nullptr;
};

}  // namespace tbf
