#include "core/theory.h"

#include <algorithm>
#include <cmath>

namespace tbf {

double Lemma1LowerBoundFactor(int arity) {
  return 1.0 / (3.0 * (2.0 * arity - 1.0));
}

double Lemma2UpperBoundFactor(int arity, double epsilon_tree) {
  double two_c = 2.0 * arity;
  double base = std::log(two_c) / epsilon_tree;
  // The bound is vacuous (factor < 1 impossible for an expectation upper
  // bound derived this way) only through hidden constants; clamp at 1.
  return std::max(1.0, std::pow(base, std::log2(two_c)));
}

double Theorem3RatioShape(double epsilon, double num_predefined_points,
                          double matching_size) {
  double log_n = std::max(1.0, std::log2(num_predefined_points));
  double log_k = std::max(1.0, std::log2(matching_size));
  return (1.0 / std::pow(epsilon, 4)) * log_n * log_k * log_k;
}

double DistortionRatioBound(int arity, double epsilon_tree) {
  return Lemma2UpperBoundFactor(arity, epsilon_tree) /
         Lemma1LowerBoundFactor(arity);
}

}  // namespace tbf
