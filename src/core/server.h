// TbfServer — the untrusted crowdsourcing server of the paper's interaction
// model (Sec. II-A), assembled from the library's pieces into the service a
// deployment would actually run:
//
//   * owns the published CompleteHst (serializable via hst/serialize.h),
//   * accepts worker registrations and task submissions as *obfuscated
//     leaves* (it never sees a true location),
//   * assigns each task on arrival with HST-Greedy (Alg. 4),
//   * optionally enforces a per-user lifetime privacy budget: clients
//     declare the epsilon their report was drawn with, and repeated
//     reports compose additively (privacy/budget.h).
//
// The server is deliberately *unable* to undo the privacy mechanism: its
// entire interface speaks leaf paths.
//
// Worker lifecycle: Register (join the pool / relocate with a fresh
// report) -> assigned by SubmitTask (leaves the pool; to serve again the
// worker registers anew, spending budget again) or Unregister (go offline).

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/tbf.h"
#include "hst/hst_index.h"
#include "privacy/budget.h"

namespace tbf {

/// \brief Server-side configuration.
struct TbfServerOptions {
  /// When set, every report must declare its epsilon and per-user spend is
  /// capped at this lifetime budget.
  std::optional<double> lifetime_budget;

  /// Tie-breaking for the online matcher (canonical by default).
  HstTieBreak tie_break = HstTieBreak::kCanonical;

  /// Seed for randomized tie-breaking.
  uint64_t seed = 1;
};

/// \brief Result of one task submission.
struct DispatchResult {
  /// Registration id of the assigned worker; empty if none was available.
  std::optional<std::string> worker;
  /// Tree distance (metric units) between the reported leaves.
  double reported_tree_distance = 0.0;
};

/// \brief One entry of a batch registration or submission: a user id plus
/// the obfuscated leaf their client reported (and the declared epsilon when
/// the server enforces budgets).
struct LeafReport {
  std::string user_id;
  LeafPath leaf;
  std::optional<double> declared_epsilon;
};

/// \brief Code-native batch entry: the obfuscated leaf as a packed
/// LeafCode (what TbfFramework::ObfuscateCodes emits).
struct LeafCodeReport {
  std::string user_id;
  LeafCode code = 0;
  std::optional<double> declared_epsilon;
};

/// \brief Outcome of one item of a batch submission.
struct BatchDispatchOutcome {
  Status status;          ///< per-item admission result
  DispatchResult result;  ///< meaningful when status.ok()
};

/// \brief Depth + digit-range validation of an untrusted client leaf
/// against a published tree. Shared by every serving engine (TbfServer
/// here, ShardedTbfServer in serve/): the flat index would index child
/// tables with these digits, so out-of-range ones are rejected up front
/// instead of aborting (or reading out of bounds) deeper down.
Status ValidateReportedLeaf(const CompleteHst& tree, const LeafPath& leaf);

/// \brief Packed-code variant: rejects codes with stray bits below the
/// last digit and (for non-power-of-two arity) digit fields >= arity, and
/// fails outright when the published tree has no packed-code codec. O(1)
/// for power-of-two arity.
Status ValidateReportedLeafCode(const CompleteHst& tree, LeafCode code);

/// \brief Online dispatch server operating purely on obfuscated leaves.
///
/// Not thread-safe; wrap with external synchronization for concurrent use.
class TbfServer {
 public:
  /// \brief Creates a server around a published tree.
  static Result<TbfServer> Create(std::shared_ptr<const CompleteHst> tree,
                                  const TbfServerOptions& options = {});

  /// \brief Registers a worker at an obfuscated leaf, or relocates an
  /// already-registered worker to a fresh report.
  ///
  /// `declared_epsilon` is the budget the client spent producing the
  /// report; required (and charged per report) when the server enforces
  /// budgets — a charge that would exceed the cap fails and leaves any
  /// previous registration untouched.
  Status RegisterWorker(const std::string& worker_id, const LeafPath& leaf,
                        std::optional<double> declared_epsilon = std::nullopt);

  /// \brief Code-native registration: identical semantics, but the report
  /// is a packed LeafCode and no LeafPath is materialized anywhere on the
  /// way into the index. Fails when the tree has no codec.
  Status RegisterWorker(const std::string& worker_id, LeafCode code,
                        std::optional<double> declared_epsilon = std::nullopt);

  /// \brief Removes an available worker from the pool (going offline).
  Status UnregisterWorker(const std::string& worker_id);

  /// \brief True when `worker_id` is currently registered and available.
  bool IsRegistered(const std::string& worker_id) const {
    return workers_.count(worker_id) > 0;
  }

  /// \brief Submits a task at an obfuscated leaf; assigns and consumes the
  /// nearest available worker (Alg. 4). Budget rules apply to the task id
  /// exactly as to workers.
  Result<DispatchResult> SubmitTask(const std::string& task_id,
                                    const LeafPath& leaf,
                                    std::optional<double> declared_epsilon =
                                        std::nullopt);

  /// \brief Code-native submission (see the code RegisterWorker overload).
  Result<DispatchResult> SubmitTask(const std::string& task_id, LeafCode code,
                                    std::optional<double> declared_epsilon =
                                        std::nullopt);

  /// \brief Registers a worker batch (one arrival wave). Item k's status is
  /// exactly what RegisterWorker would have returned; a failed item is
  /// skipped, the rest of the batch proceeds. Obfuscation already happened
  /// client-side (see TbfFramework::ObfuscateBatch for the parallel path);
  /// the pool mutation itself is sequential by design.
  std::vector<Status> RegisterWorkers(const std::vector<LeafReport>& batch);

  /// \brief Submits a task batch; assignment is inherently online, so items
  /// are dispatched sequentially in vector order, each seeing the pool
  /// state its predecessors left behind.
  std::vector<BatchDispatchOutcome> SubmitTasks(
      const std::vector<LeafReport>& batch);

  /// \brief Code-native batch spans (pair with ObfuscateCodes).
  std::vector<Status> RegisterWorkers(std::span<const LeafCodeReport> batch);
  std::vector<BatchDispatchOutcome> SubmitTasks(
      std::span<const LeafCodeReport> batch);

  /// Number of workers currently available for assignment.
  size_t available_workers() const { return index_.size(); }

  /// Total tasks assigned so far.
  size_t assigned_tasks() const { return assigned_tasks_; }

  /// \brief Size of the internal index-id pool. Ids are recycled on every
  /// removal path (assignment, unregister, relocation), so this stays
  /// bounded by the peak number of concurrently registered workers, not by
  /// total registrations ever — exposed for monitoring and leak tests.
  size_t index_id_pool_size() const { return worker_by_index_id_.size(); }

  /// The published tree.
  const CompleteHst& tree() const { return *tree_; }

  /// The configuration the server was created with.
  const TbfServerOptions& options() const { return options_; }

  /// The budget ledger, when budgeting is enabled (else nullptr).
  const PrivacyBudgetLedger* ledger() const { return ledger_.get(); }

 private:
  TbfServer(std::shared_ptr<const CompleteHst> tree,
            const TbfServerOptions& options);

  Status ChargeIfRequired(const std::string& user,
                          std::optional<double> declared_epsilon);

  // Shared cores over the report key type (LeafCode in packed mode,
  // LeafPath otherwise); both instantiations live in the .cc. The caller
  // has already validated the report.
  template <typename Key>
  Status RegisterImpl(const std::string& worker_id, const Key& key,
                      std::optional<double> declared_epsilon);
  template <typename Key>
  Result<DispatchResult> SubmitImpl(const std::string& task_id, const Key& key,
                                    std::optional<double> declared_epsilon);

  std::shared_ptr<const CompleteHst> tree_;
  TbfServerOptions options_;
  HstAvailabilityIndex index_;
  Rng rng_;
  std::unique_ptr<PrivacyBudgetLedger> ledger_;

  // Index ids are recycled through a free list so the per-id arrays (here
  // and inside HstAvailabilityIndex) stay bounded by the peak pool size in
  // a long-running server, not by the total number of registrations ever.
  int AcquireIndexId(const std::string& worker_id);
  void ReleaseIndexId(int index_id);

  // When the published tree has a packed-code codec the server stores and
  // indexes workers by LeafCode only (LeafPath reports are packed once at
  // the boundary); `leaf` is used solely on codec-less trees.
  struct WorkerState {
    LeafCode code = 0;
    LeafPath leaf;
    int index_id = -1;  // id inside index_
  };
  bool packed_ = false;  // tree_->codec() != nullptr
  std::unordered_map<std::string, WorkerState> workers_;
  std::vector<std::string> worker_by_index_id_;
  std::vector<int> free_index_ids_;
  size_t assigned_tasks_ = 0;
};

}  // namespace tbf
