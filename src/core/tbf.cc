#include "core/tbf.h"

#include "common/timer.h"

namespace tbf {

Result<TbfFramework> TbfFramework::Build(std::vector<Point> predefined_points,
                                         const Metric& metric, Rng* rng,
                                         const TbfOptions& options) {
  TBF_ASSIGN_OR_RETURN(
      CompleteHst tree,
      CompleteHst::BuildFromPoints(predefined_points, metric, rng, options.tree));
  TbfFramework framework;
  framework.tree_ = std::make_shared<const CompleteHst>(std::move(tree));
  TBF_ASSIGN_OR_RETURN(HstMechanism mechanism,
                       HstMechanism::Build(*framework.tree_, options.epsilon));
  framework.mechanism_ = std::make_shared<const HstMechanism>(std::move(mechanism));
  return framework;
}

std::vector<LeafPath> TbfFramework::ObfuscateBatch(
    const std::vector<Point>& locations, const Rng& stream, ThreadPool* pool,
    BatchStageTimings* timings, uint64_t fork_offset) const {
  const size_t n = locations.size();
  // Stage 1: nearest-predefined-point mapping (pure reads of the kd-tree).
  std::vector<const LeafPath*> mapped(n, nullptr);
  WallTimer timer;
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) mapped[i] = &TrueLeaf(locations[i]);
  });
  if (timings) timings->map_seconds += timer.ElapsedSeconds();

  // Stage 2: mechanism draws, one ForkAt stream per item.
  std::vector<LeafPath> reported(n);
  timer.Restart();
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng item_rng = stream.ForkAt(fork_offset + i);
      reported[i] = mechanism_->Obfuscate(*mapped[i], &item_rng);
    }
  });
  if (timings) timings->obfuscate_seconds += timer.ElapsedSeconds();
  return reported;
}

}  // namespace tbf
