#include "core/tbf.h"

#include "common/logging.h"
#include "common/timer.h"

namespace tbf {

Result<TbfFramework> TbfFramework::Build(std::vector<Point> predefined_points,
                                         const Metric& metric, Rng* rng,
                                         const TbfOptions& options) {
  TBF_ASSIGN_OR_RETURN(
      CompleteHst tree,
      CompleteHst::BuildFromPoints(predefined_points, metric, rng, options.tree));
  TbfFramework framework;
  framework.tree_ = std::make_shared<const CompleteHst>(std::move(tree));
  TBF_ASSIGN_OR_RETURN(HstMechanism mechanism,
                       HstMechanism::Build(*framework.tree_, options.epsilon));
  framework.mechanism_ = std::make_shared<const HstMechanism>(std::move(mechanism));
  framework.sampler_ = options.sampler;
  if (options.sampler != SamplerKind::kWalk &&
      framework.tree_->codec() == nullptr) {
    return Status::InvalidArgument(
        "inverse-CDF/oblivious samplers require a tree shape that fits "
        "packed codes");
  }
  return framework;
}

std::vector<LeafPath> TbfFramework::ObfuscateBatch(
    const std::vector<Point>& locations, const Rng& stream, ThreadPool* pool,
    BatchStageTimings* timings, uint64_t fork_offset,
    std::optional<SamplerKind> sampler_override) const {
  const size_t n = locations.size();
  // Stage 1: nearest-predefined-point mapping (pure reads of the kd-tree).
  std::vector<const LeafPath*> mapped(n, nullptr);
  WallTimer timer;
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) mapped[i] = &TrueLeaf(locations[i]);
  });
  if (timings) timings->map_seconds += timer.ElapsedSeconds();

  // Stage 2: mechanism draws, one ForkAt stream per item.
  std::vector<LeafPath> reported(n);
  timer.Restart();
  const SamplerKind kind = sampler_override.value_or(sampler_);
  const bool packed = kind != SamplerKind::kWalk;
  const LeafCodec* codec = tree_->codec();
  TBF_CHECK(!packed || codec != nullptr)
      << "non-walk samplers require a tree shape that fits packed codes";
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng item_rng = stream.ForkAt(fork_offset + i);
      reported[i] =
          packed ? codec->Unpack(mechanism_->ObfuscateCodeWith(
                       codec->Pack(*mapped[i]), &item_rng, kind))
                 : mechanism_->Obfuscate(*mapped[i], &item_rng);
    }
  });
  if (timings) timings->obfuscate_seconds += timer.ElapsedSeconds();
  return reported;
}

std::vector<LeafCode> TbfFramework::ObfuscateCodes(
    const std::vector<Point>& locations, const Rng& stream, ThreadPool* pool,
    BatchStageTimings* timings, uint64_t fork_offset,
    std::optional<SamplerKind> sampler_override) const {
  TBF_CHECK(tree_->codec() != nullptr)
      << "tree shape exceeds packed-code capacity";
  const size_t n = locations.size();
  // Stage 1: nearest-predefined-point mapping straight to point ids (the
  // packed code per id is precomputed on the tree).
  std::vector<int32_t> mapped(n, 0);
  WallTimer timer;
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      mapped[i] = tree_->MapToNearestPoint(locations[i]);
    }
  });
  if (timings) timings->map_seconds += timer.ElapsedSeconds();

  // Stage 2: mechanism draws in the packed domain, one ForkAt stream per
  // item — same stream layout as ObfuscateBatch, so with the walk sampler
  // the two pipelines report the same leaves.
  std::vector<LeafCode> reported(n);
  timer.Restart();
  const SamplerKind kind = sampler_override.value_or(sampler_);
  pool->ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng item_rng = stream.ForkAt(fork_offset + i);
      reported[i] = mechanism_->ObfuscateCodeWith(
          tree_->leaf_code_of_point(mapped[i]), &item_rng, kind);
    }
  });
  if (timings) timings->obfuscate_seconds += timer.ElapsedSeconds();
  return reported;
}

}  // namespace tbf
