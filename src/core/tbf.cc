#include "core/tbf.h"

namespace tbf {

Result<TbfFramework> TbfFramework::Build(std::vector<Point> predefined_points,
                                         const Metric& metric, Rng* rng,
                                         const TbfOptions& options) {
  TBF_ASSIGN_OR_RETURN(
      CompleteHst tree,
      CompleteHst::BuildFromPoints(predefined_points, metric, rng, options.tree));
  TbfFramework framework;
  framework.tree_ = std::make_shared<const CompleteHst>(std::move(tree));
  TBF_ASSIGN_OR_RETURN(HstMechanism mechanism,
                       HstMechanism::Build(*framework.tree_, options.epsilon));
  framework.mechanism_ = std::make_shared<const HstMechanism>(std::move(mechanism));
  return framework;
}

}  // namespace tbf
