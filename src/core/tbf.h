// TBF — the paper's end-to-end Tree-Based Framework (Fig. 1 workflow).
//
//   1. The server constructs an HST over a predefined, published point set.
//   2. Each worker maps their location to the nearest predefined point's
//      leaf and reports an obfuscated leaf drawn by the HST mechanism.
//   3. Each arriving task does the same.
//   4. The server matches on obfuscated leaves (HST-Greedy, Alg. 4 —
//      implemented in matching/hst_greedy.h).
//
// TbfFramework owns steps 1-3: the published tree, the client-side mapping,
// and the mechanism. Matching lives in matching/ so the same framework
// serves both the distance objective and the matching-size case study.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/hst_mechanism.h"
#include "geo/metric.h"
#include "geo/point.h"
#include "hst/complete_hst.h"

namespace tbf {

/// \brief Configuration of the published structure and the mechanism.
struct TbfOptions {
  /// Privacy budget per metric distance unit.
  double epsilon = 0.6;

  /// Sampler driving the batched/serving obfuscation paths. kWalk (the
  /// default) keeps every existing draw sequence bit-identical; kInverseCdf
  /// draws the same distribution in O(1) rng calls per sample
  /// (HstMechanism::ObfuscateCode); kOblivious draws it through a
  /// constant-shape schedule whose timing and trip counts are independent
  /// of the true leaf (HstMechanism::ObfuscateCodeOblivious). The non-walk
  /// samplers require a tree shape that fits packed codes.
  SamplerKind sampler = SamplerKind::kWalk;

  /// Algorithm-1 options (beta, normalization).
  HstTreeOptions tree;
};

/// \brief The published HST + mechanism bundle shared by server and clients.
class TbfFramework {
 public:
  /// \brief Builds the HST over `predefined_points` (server side, step 1)
  /// and derives the mechanism. `rng` drives the tree randomness
  /// (permutation, beta).
  static Result<TbfFramework> Build(std::vector<Point> predefined_points,
                                    const Metric& metric, Rng* rng,
                                    const TbfOptions& options = {});

  /// The published complete c-ary HST.
  const CompleteHst& tree() const { return *tree_; }

  /// Shared ownership of the published tree (servers keep it alive past
  /// the framework, e.g. serve/replay.cc handing it to ShardedTbfServer).
  std::shared_ptr<const CompleteHst> tree_ptr() const { return tree_; }

  /// The paper's leaf mechanism at the configured epsilon.
  const HstMechanism& mechanism() const { return *mechanism_; }

  /// \brief Client-side step without privacy: the leaf whose predefined
  /// point is nearest to `location`.
  const LeafPath& TrueLeaf(const Point& location) const {
    return tree_->MapToNearestLeaf(location);
  }

  /// \brief Full client-side step: map to the nearest leaf, then obfuscate
  /// with the HST mechanism (what a worker/task actually reports).
  LeafPath ObfuscateLocation(const Point& location, Rng* rng) const {
    return mechanism_->Obfuscate(TrueLeaf(location), rng);
  }

  /// \brief Wall-clock breakdown of one ObfuscateBatch call.
  struct BatchStageTimings {
    double map_seconds = 0.0;        ///< nearest-predefined-point mapping
    double obfuscate_seconds = 0.0;  ///< mechanism random-walk draws
  };

  /// \brief Batch client-side reporting: maps and obfuscates `locations`
  /// across `pool`'s threads. Item i draws from
  /// stream.ForkAt(fork_offset + i), so the output is bit-identical
  /// regardless of thread count or scheduling — and a caller that chops
  /// one logical stream into several batches (the event-time replay loop
  /// obfuscates per epoch) gets results independent of where the cuts
  /// fall by passing the number of items already obfuscated as the
  /// offset. `timings`, when given, accumulates the per-stage wall clock.
  /// `sampler_override` replaces TbfOptions::sampler for this batch only
  /// (the replay loop plumbs its per-run sampler through here); a
  /// non-walk override requires codec() != nullptr (CHECKed).
  std::vector<LeafPath> ObfuscateBatch(
      const std::vector<Point>& locations, const Rng& stream, ThreadPool* pool,
      BatchStageTimings* timings = nullptr, uint64_t fork_offset = 0,
      std::optional<SamplerKind> sampler_override = std::nullopt) const;

  /// \brief Code-native batch reporting: identical fork/determinism and
  /// override contract to ObfuscateBatch, but maps to precomputed leaf
  /// codes and samples in the packed domain — no LeafPath is materialized
  /// for any item. With the default kWalk sampler, element i is exactly
  /// codec()->Pack(ObfuscateBatch(...)[i]). Requires codec() != nullptr.
  std::vector<LeafCode> ObfuscateCodes(
      const std::vector<Point>& locations, const Rng& stream, ThreadPool* pool,
      BatchStageTimings* timings = nullptr, uint64_t fork_offset = 0,
      std::optional<SamplerKind> sampler_override = std::nullopt) const;

  /// \brief Codec of the published tree's packed leaf addressing, or
  /// nullptr when the shape exceeds 64 bits.
  const LeafCodec* codec() const { return tree_->codec(); }

  /// The sampler the batched paths draw with.
  SamplerKind sampler() const { return sampler_; }

  /// Tree distance between two reported leaves, in metric units — all the
  /// server ever evaluates.
  double TreeDistance(const LeafPath& a, const LeafPath& b) const {
    return tree_->TreeDistance(a, b);
  }

  double epsilon() const { return mechanism_->epsilon(); }

 private:
  TbfFramework() = default;

  std::shared_ptr<const CompleteHst> tree_;
  std::shared_ptr<const HstMechanism> mechanism_;
  SamplerKind sampler_ = SamplerKind::kWalk;
};

}  // namespace tbf
