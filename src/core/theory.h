// Closed-form bounds from the paper's analysis (Sec. III-E).
//
// These are display/validation helpers: Lemma 1 and Lemma 2 bound the
// expected obfuscation distortion of a tree edge; Theorem 3 combines them
// with the HST-Greedy competitive ratio of Meyerson et al. The ablation
// bench compares empirical ratios against the shapes these formulas predict.

#pragma once

namespace tbf {

/// \brief Lemma 1: E[dT(u', v)] >= dT(u, v) / (3 (2c - 1)).
double Lemma1LowerBoundFactor(int arity);

/// \brief Lemma 2: E[dT(u', v)] <= O((ln 2c / eps)^{log2 2c}) dT(u, v).
/// Returns the dominating term (ln(2c)/eps)^{log2(2c)} without the hidden
/// constant. `eps` is the budget in tree units.
double Lemma2UpperBoundFactor(int arity, double epsilon_tree);

/// \brief Theorem 3 shape: (1/eps^4) * log2(N) * log2(k)^2 for c = 2
/// (the paper reduces arbitrary HSTs to binary ones). Hidden constants
/// omitted; useful for plotting the predicted growth curve next to
/// measured competitive ratios.
double Theorem3RatioShape(double epsilon, double num_predefined_points,
                          double matching_size);

/// \brief The per-edge expected-distortion ratio ub/lb used inside the
/// Theorem 3 proof, with lb from Lemma 1 and ub from Lemma 2.
double DistortionRatioBound(int arity, double epsilon_tree);

}  // namespace tbf
