#include "core/hst_mechanism.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace tbf {

Result<HstMechanism> HstMechanism::Build(const CompleteHst& tree, double epsilon) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  HstMechanism m;
  m.depth_ = tree.depth();
  m.arity_ = tree.arity();
  m.epsilon_metric_ = epsilon;
  // Weight exponents use tree-unit distances (edges 2^{i+1}); converting the
  // metric-unit budget keeps the Geo-I guarantee stated in metric units.
  m.epsilon_tree_ = epsilon / tree.scale();

  const int depth = m.depth_;
  const double c = static_cast<double>(m.arity_);
  const double log_c = std::log(c);
  const double log_c_minus_1 = std::log(c - 1.0);

  // log wt_i = eps_T * (4 - 2^{i+2}); exact for i = 0 too (wt_0 = 1).
  m.log_weight_.resize(static_cast<size_t>(depth) + 1);
  m.log_level_total_.resize(static_cast<size_t>(depth) + 1);
  for (int i = 0; i <= depth; ++i) {
    m.log_weight_[static_cast<size_t>(i)] =
        m.epsilon_tree_ * (4.0 - PowerOfTwo(i + 2));
    // |L_i| = (c-1) c^{i-1} leaves share weight wt_i (one leaf at i = 0).
    m.log_level_total_[static_cast<size_t>(i)] =
        i == 0 ? m.log_weight_[0]
               : (i - 1) * log_c + log_c_minus_1 + m.log_weight_[static_cast<size_t>(i)];
  }
  m.log_total_weight_ = LogSumExp(m.log_level_total_);

  // tw_k = total weight of leaves with LCA level >= k (paper Eq. 7);
  // accumulate the suffix sums from the top down.
  m.log_tail_weight_.assign(static_cast<size_t>(depth) + 2, kNegInf);
  for (int k = depth; k >= 0; --k) {
    m.log_tail_weight_[static_cast<size_t>(k)] =
        LogAdd(m.log_tail_weight_[static_cast<size_t>(k) + 1],
               m.log_level_total_[static_cast<size_t>(k)]);
  }

  // pu_i = tw_{i+1} / tw_i; pu_depth = 0 (the walk must turn at the root).
  m.upward_prob_.resize(static_cast<size_t>(depth) + 1);
  for (int i = 0; i <= depth; ++i) {
    double log_num = m.log_tail_weight_[static_cast<size_t>(i) + 1];
    double log_den = m.log_tail_weight_[static_cast<size_t>(i)];
    m.upward_prob_[static_cast<size_t>(i)] =
        log_num == kNegInf ? 0.0 : std::exp(log_num - log_den);
  }

  // Prefix sums of log pu_j make WalkProbability O(1) instead of O(D) per
  // call (equal up to FP regrouping of the old per-call accumulation).
  // pu_j > 0 for all j < D (only pu_D is 0), so every prefix is finite.
  m.log_upward_prefix_.resize(static_cast<size_t>(depth) + 1);
  m.log_upward_prefix_[0] = 0.0;
  for (int i = 0; i < depth; ++i) {
    m.log_upward_prefix_[static_cast<size_t>(i) + 1] =
        m.log_upward_prefix_[static_cast<size_t>(i)] +
        std::log(m.upward_prob_[static_cast<size_t>(i)]);
  }

  // Inverse-CDF table of the level marginal P(lvl <= k) for the fast
  // sampler. The walk turns at level i with probability
  // (prod_{j<i} pu_j)(1 - pu_i) = |L_i| wt_i / WT = LevelProbability(i)
  // (Theorem 2), so one Uniform01 against this table replaces up to D
  // Bernoulli draws. The last entry is clamped to 1 so a draw can never
  // fall past the table through rounding.
  m.cum_level_prob_.resize(static_cast<size_t>(depth) + 1);
  double cum = 0.0;
  for (int i = 0; i <= depth; ++i) {
    cum += std::exp(m.log_level_total_[static_cast<size_t>(i)] -
                    m.log_total_weight_);
    m.cum_level_prob_[static_cast<size_t>(i)] = cum;
  }
  m.cum_level_prob_[static_cast<size_t>(depth)] =
      std::max(m.cum_level_prob_[static_cast<size_t>(depth)], 1.0);

  // Guide table accelerating the inverse-CDF lookup: bucket g covers
  // u in [g/G, (g+1)/G) and level_guide_[g] is the smallest level whose
  // cum exceeds the bucket's left edge, so a draw costs one multiply plus
  // a scan of only the levels whose cum falls inside its bucket (usually
  // none) — no data-dependent branch mispredicts from a binary search.
  m.level_guide_.resize(kGuideSize);
  int level = 0;
  for (int g = 0; g < kGuideSize; ++g) {
    const double edge = static_cast<double>(g) / kGuideSize;
    while (level < depth &&
           m.cum_level_prob_[static_cast<size_t>(level)] <= edge) {
      ++level;
    }
    m.level_guide_[static_cast<size_t>(g)] = level;
  }

  m.pow2_arity_ = (m.arity_ & (m.arity_ - 1)) == 0;
  if (LeafCodec::Fits(depth, m.arity_)) m.codec_.emplace(depth, m.arity_);

  obs::MetricRegistry* metrics = obs::MetricRegistry::Global();
  m.draws_walk_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_mechanism_draws_total", "sampler", "walk"));
  m.draws_inverse_cdf_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_mechanism_draws_total", "sampler", "inverse_cdf"));
  m.draws_oblivious_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_mechanism_draws_total", "sampler", "oblivious"));
  m.draws_naive_ = metrics->FindOrCreateCounter(
      obs::LabeledName("tbf_mechanism_draws_total", "sampler", "naive"));
  return m;
}

int HstMechanism::TurnLevelFromUniform(double u) const {
  // Indexed inverse CDF: the guide entry is exact for the bucket's left
  // edge, so only levels whose cum crosses inside the bucket are scanned —
  // in expectation (D + 1) / G extra steps, i.e. none for every realistic
  // depth. Result identical to std::upper_bound (verified by tests).
  int level =
      level_guide_[static_cast<size_t>(u * kGuideSize)];
  const double* cum = cum_level_prob_.data();
  while (level < depth_ && cum[level] <= u) ++level;
  return level;
}

namespace {

// Rejection-free remap of `spare` uniform random bits onto [0, m): the
// widening multiply-shift keeps the bias below m / 2^spare, which at the
// >= 32 spare bits used here sits ~10 orders of magnitude under what any
// statistical test in the suite could resolve.
inline int RemapBits(uint64_t random_bits, int m, int spare) {
  return static_cast<int>((random_bits * static_cast<uint64_t>(m)) >>
                          spare);
}

inline int RemapWord(uint64_t word, int m) {
  return static_cast<int>(
      (static_cast<unsigned __int128>(word) * static_cast<uint64_t>(m)) >> 64);
}

// All-ones when `c` is true, zero otherwise — the select primitive of the
// oblivious descent (no data-dependent branch, no cmov dependence on the
// compiler's mood).
inline uint64_t MaskAll(bool c) { return -static_cast<uint64_t>(c); }

// Probe hooks of the oblivious sampler. NoProbe compiles to nothing, so
// the serving instantiation carries zero instrumentation cost.
struct NoProbe {
  void LevelScanIter() {}
  void DescentIter() {}
  void SelectOp() {}
  void RngWord() {}
};

struct TallyProbe {
  ObliviousTally* tally;
  void LevelScanIter() { ++tally->level_scan_iters; }
  void DescentIter() { ++tally->descent_iters; }
  void SelectOp() { ++tally->select_ops; }
  void RngWord() { ++tally->rng_words; }
};

}  // namespace

LeafCode HstMechanism::ObfuscateCode(LeafCode truth, Rng* rng) const {
  TBF_CHECK(codec_) << "tree shape exceeds packed-code capacity";
  draws_inverse_cdf_->Add(1);
  const int level = TurnLevelFromUniform(rng->Uniform01());
  if (level == 0) return truth;  // LCA at the leaf: output x itself

  // The first rewritten digit must leave the truth's subtree (uniform over
  // the other c-1 children); every digit below it is uniform in [0, c).
  const int first = depth_ - level;
  const int old_digit = codec_->Digit(truth, first);
  const int suffix_digits = level - 1;

  if (pow2_arity_ && suffix_digits > 0) {
    // Power-of-two arity: every bits_-wide field of one random word is an
    // exact uniform digit, so the whole suffix (at most 64 - bits_ bits,
    // since depth * bits_ <= 64) fills by a single shift/mask. When the
    // word's unused high bits can carry the first-digit remap too, the
    // entire rewrite costs one rng draw; only suffixes within 32 bits of
    // the full word draw a second word for the remap.
    const int bits = codec_->bits_per_digit();
    const int suffix_bits = bits * suffix_digits;
    const int spare = 64 - suffix_bits;
    const uint64_t word = rng->NextU64();
    int pick = spare >= 32 ? RemapBits(word >> suffix_bits, arity_ - 1, spare)
                           : RemapWord(rng->NextU64(), arity_ - 1);
    if (pick >= old_digit) ++pick;
    LeafCode out = codec_->WithDigit(truth, first, pick);
    const int low = 64 - bits * depth_;  // unused bits below the last digit
    const uint64_t suffix_mask = ((uint64_t{1} << suffix_bits) - 1) << low;
    return (out & ~suffix_mask) | ((word << low) & suffix_mask);
  }

  int pick = RemapWord(rng->NextU64(), arity_ - 1);
  if (pick >= old_digit) ++pick;
  LeafCode out = codec_->WithDigit(truth, first, pick);
  // Non-power-of-two arity: masked fields would be biased, so draw one
  // UniformInt per suffix digit (still allocation-free).
  for (int pos = first + 1; pos < depth_; ++pos) {
    out = codec_->WithDigit(
        out, pos, static_cast<int>(rng->UniformInt(0, arity_ - 1)));
  }
  return out;
}

template <typename Probe>
LeafCode HstMechanism::ObfuscateCodeObliviousImpl(LeafCode truth, Rng* rng,
                                                  Probe probe) const {
  TBF_CHECK(codec_) << "tree shape exceeds packed-code capacity";
  // Word 1: the turn level, by a full scan of the cumulative level table.
  // Unlike TurnLevelFromUniform there is no guide-table shortcut and no
  // early exit — every call executes exactly depth_ compare-accumulate
  // steps, and the comparison feeds an integer add instead of a branch.
  // The result is identical (the scan counts the levels whose cum <= u,
  // which IS the smallest index with cum > u for a nondecreasing table).
  const double u = rng->Uniform01();
  probe.RngWord();
  const double* cum = cum_level_prob_.data();
  int level = 0;
  for (int k = 0; k < depth_; ++k) {
    level += static_cast<int>(cum[k] <= u);
    probe.LevelScanIter();
  }

  // Word 2: the first rewritten digit. Uniform over [0, arity - 1) by
  // Lemire-style bounded reduction of one full word (rejection-free for
  // every arity — this replaces the odd-arity UniformInt fallback of the
  // inverse-CDF path), with the != truth constraint folded in by the
  // arithmetic shift past the true digit. At level == 0 the pick is
  // computed against the clamped position depth_ - 1 and then masked away
  // below; the draw happens regardless so the word count never moves.
  const int first = depth_ - level;  // == depth_ when the walk turns at x
  const int old_pos = first - static_cast<int>(first == depth_);
  const int old_digit = codec_->Digit(truth, old_pos);
  const uint64_t pick_word = rng->NextU64();
  probe.RngWord();
  int pick = RemapWord(pick_word, arity_ - 1);
  pick += static_cast<int>(pick >= old_digit);

  // Words 3 .. depth_ + 2: branchless constant-shape descent. Every digit
  // position draws one word and resolves through the same three-way mask
  // select — keep the truth digit above the turn, the pick at the turn,
  // a fresh uniform digit below it — so positions that keep the truth
  // digit cost exactly what rewritten positions cost. first == depth_
  // makes every position a "keep", which returns the truth itself
  // through the identical schedule.
  const int bits = codec_->bits_per_digit();
  uint64_t acc = 0;
  for (int pos = 0; pos < depth_; ++pos) {
    const uint64_t word = rng->NextU64();
    probe.RngWord();
    const int uniform_digit = RemapWord(word, arity_);
    const int keep_digit = codec_->Digit(truth, pos);
    const uint64_t keep_mask = MaskAll(pos < first);
    const uint64_t pick_mask = MaskAll(pos == first);
    const int digit = static_cast<int>(
        (static_cast<uint64_t>(keep_digit) & keep_mask) |
        (static_cast<uint64_t>(pick) & pick_mask) |
        (static_cast<uint64_t>(uniform_digit) & ~(keep_mask | pick_mask)));
    acc = (acc << bits) | static_cast<uint64_t>(digit);
    probe.DescentIter();
    probe.SelectOp();
  }
  return acc << (64 - bits * depth_);
}

LeafCode HstMechanism::ObfuscateCodeOblivious(LeafCode truth, Rng* rng) const {
  draws_oblivious_->Add(1);
  return ObfuscateCodeObliviousImpl(truth, rng, NoProbe{});
}

LeafCode HstMechanism::ObfuscateCodeOblivious(LeafCode truth, Rng* rng,
                                              ObliviousTally* tally) const {
  draws_oblivious_->Add(1);
  return ObfuscateCodeObliviousImpl(truth, rng, TallyProbe{tally});
}

LeafCode HstMechanism::ObfuscateCodeWalk(LeafCode truth, Rng* rng) const {
  TBF_CHECK(codec_) << "tree shape exceeds packed-code capacity";
  draws_walk_->Add(1);
  // Exactly Obfuscate's draw sequence, digit for digit, on the packed word.
  int turn_level = 0;
  while (turn_level <= depth_ &&
         rng->Bernoulli(upward_prob_[static_cast<size_t>(turn_level)])) {
    ++turn_level;
  }
  if (turn_level == 0) return truth;

  const int first = depth_ - turn_level;
  const int old_digit = codec_->Digit(truth, first);
  int pick = static_cast<int>(rng->UniformInt(0, arity_ - 2));
  if (pick >= old_digit) ++pick;
  LeafCode out = codec_->WithDigit(truth, first, pick);
  for (int pos = first + 1; pos < depth_; ++pos) {
    out = codec_->WithDigit(out, pos,
                            static_cast<int>(rng->UniformInt(0, arity_ - 1)));
  }
  return out;
}

LeafPath HstMechanism::Obfuscate(const LeafPath& truth, Rng* rng) const {
  TBF_DCHECK(static_cast<int>(truth.size()) == depth_) << "leaf depth mismatch";
  draws_walk_->Add(1);
  // Walk upward from the true leaf; at level i keep climbing w.p. pu_i.
  int turn_level = 0;
  while (turn_level <= depth_ &&
         rng->Bernoulli(upward_prob_[static_cast<size_t>(turn_level)])) {
    ++turn_level;
  }
  if (turn_level == 0) return truth;  // turned immediately: output x itself

  // Descend: first step must leave the subtree we came from, so pick a
  // uniform digit different from the truth's; below that, uniform digits.
  LeafPath out = truth;
  const size_t first = static_cast<size_t>(depth_ - turn_level);
  int old_digit = static_cast<int>(truth[first]);
  int pick = static_cast<int>(rng->UniformInt(0, arity_ - 2));
  if (pick >= old_digit) ++pick;
  out[first] = static_cast<char16_t>(pick);
  for (size_t pos = first + 1; pos < out.size(); ++pos) {
    out[pos] = static_cast<char16_t>(rng->UniformInt(0, arity_ - 1));
  }
  return out;
}

Result<LeafPath> HstMechanism::SampleNaive(const LeafPath& truth, Rng* rng,
                                           double max_leaves) const {
  draws_naive_->Add(1);
  TBF_ASSIGN_OR_RETURN(std::vector<LeafPath> leaves, EnumerateLeaves(max_leaves));
  // Single-pass inverse-CDF over the exact distribution (Alg. 2 line 1-2).
  double target = rng->Uniform01();
  double acc = 0.0;
  for (const LeafPath& leaf : leaves) {
    acc += Probability(truth, leaf);
    if (target < acc) return leaf;
  }
  return leaves.back();  // numerical slack: acc summed to slightly below 1
}

double HstMechanism::LogProbability(const LeafPath& x, const LeafPath& z) const {
  int level = LcaLevel(x, z);
  return log_weight_[static_cast<size_t>(level)] - log_total_weight_;
}

double HstMechanism::Probability(const LeafPath& x, const LeafPath& z) const {
  return std::exp(LogProbability(x, z));
}

double HstMechanism::LogProbability(LeafCode x, LeafCode z) const {
  TBF_CHECK(codec_) << "tree shape exceeds packed-code capacity";
  const int level = codec_->LcaLevel(x, z);
  return log_weight_[static_cast<size_t>(level)] - log_total_weight_;
}

double HstMechanism::Probability(LeafCode x, LeafCode z) const {
  return std::exp(LogProbability(x, z));
}

double HstMechanism::LevelProbability(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return std::exp(log_level_total_[static_cast<size_t>(level)] - log_total_weight_);
}

double HstMechanism::LogWeight(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return log_weight_[static_cast<size_t>(level)];
}

double HstMechanism::UpwardProbability(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return upward_prob_[static_cast<size_t>(level)];
}

double HstMechanism::WalkProbability(const LeafPath& x, const LeafPath& z) const {
  const int level = LcaLevel(x, z);
  // log(1 - pu_i) = log(level share of tw_i), exact even when pu_i ~ 1.
  auto log_turn = [this](int i) {
    return log_level_total_[static_cast<size_t>(i)] -
           log_tail_weight_[static_cast<size_t>(i)];
  };
  if (level == 0) return std::exp(log_turn(0));
  // Climb probability: sum_{i<level} log pu_i, precomputed at Build time.
  double log_p = log_turn(level) + log_upward_prefix_[static_cast<size_t>(level)];
  // Downward choices: 1/(c-1) for the first step, 1/c for each step below.
  log_p -= std::log(static_cast<double>(arity_ - 1));
  log_p -= (level - 1) * std::log(static_cast<double>(arity_));
  return std::exp(log_p);
}

Result<std::vector<LeafPath>> HstMechanism::EnumerateLeaves(double max_leaves) const {
  double total = std::pow(static_cast<double>(arity_), depth_);
  if (total > max_leaves) {
    return Status::OutOfRange("complete tree too large to enumerate");
  }
  std::vector<LeafPath> leaves;
  leaves.reserve(static_cast<size_t>(total));
  LeafPath current(static_cast<size_t>(depth_), 0);
  while (true) {
    leaves.push_back(current);
    // Increment the digit string (odometer, least-significant digit last).
    int pos = depth_ - 1;
    while (pos >= 0) {
      if (static_cast<int>(current[static_cast<size_t>(pos)]) + 1 < arity_) {
        ++current[static_cast<size_t>(pos)];
        break;
      }
      current[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return leaves;
}

}  // namespace tbf
