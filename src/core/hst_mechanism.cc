#include "core/hst_mechanism.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace tbf {

Result<HstMechanism> HstMechanism::Build(const CompleteHst& tree, double epsilon) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  HstMechanism m;
  m.depth_ = tree.depth();
  m.arity_ = tree.arity();
  m.epsilon_metric_ = epsilon;
  // Weight exponents use tree-unit distances (edges 2^{i+1}); converting the
  // metric-unit budget keeps the Geo-I guarantee stated in metric units.
  m.epsilon_tree_ = epsilon / tree.scale();

  const int depth = m.depth_;
  const double c = static_cast<double>(m.arity_);
  const double log_c = std::log(c);
  const double log_c_minus_1 = std::log(c - 1.0);

  // log wt_i = eps_T * (4 - 2^{i+2}); exact for i = 0 too (wt_0 = 1).
  m.log_weight_.resize(static_cast<size_t>(depth) + 1);
  m.log_level_total_.resize(static_cast<size_t>(depth) + 1);
  for (int i = 0; i <= depth; ++i) {
    m.log_weight_[static_cast<size_t>(i)] =
        m.epsilon_tree_ * (4.0 - PowerOfTwo(i + 2));
    // |L_i| = (c-1) c^{i-1} leaves share weight wt_i (one leaf at i = 0).
    m.log_level_total_[static_cast<size_t>(i)] =
        i == 0 ? m.log_weight_[0]
               : (i - 1) * log_c + log_c_minus_1 + m.log_weight_[static_cast<size_t>(i)];
  }
  m.log_total_weight_ = LogSumExp(m.log_level_total_);

  // tw_k = total weight of leaves with LCA level >= k (paper Eq. 7);
  // accumulate the suffix sums from the top down.
  m.log_tail_weight_.assign(static_cast<size_t>(depth) + 2, kNegInf);
  for (int k = depth; k >= 0; --k) {
    m.log_tail_weight_[static_cast<size_t>(k)] =
        LogAdd(m.log_tail_weight_[static_cast<size_t>(k) + 1],
               m.log_level_total_[static_cast<size_t>(k)]);
  }

  // pu_i = tw_{i+1} / tw_i; pu_depth = 0 (the walk must turn at the root).
  m.upward_prob_.resize(static_cast<size_t>(depth) + 1);
  for (int i = 0; i <= depth; ++i) {
    double log_num = m.log_tail_weight_[static_cast<size_t>(i) + 1];
    double log_den = m.log_tail_weight_[static_cast<size_t>(i)];
    m.upward_prob_[static_cast<size_t>(i)] =
        log_num == kNegInf ? 0.0 : std::exp(log_num - log_den);
  }

  // Prefix sums of log pu_j make WalkProbability O(1) instead of O(D) per
  // call (equal up to FP regrouping of the old per-call accumulation).
  // pu_j > 0 for all j < D (only pu_D is 0), so every prefix is finite.
  m.log_upward_prefix_.resize(static_cast<size_t>(depth) + 1);
  m.log_upward_prefix_[0] = 0.0;
  for (int i = 0; i < depth; ++i) {
    m.log_upward_prefix_[static_cast<size_t>(i) + 1] =
        m.log_upward_prefix_[static_cast<size_t>(i)] +
        std::log(m.upward_prob_[static_cast<size_t>(i)]);
  }
  return m;
}

LeafPath HstMechanism::Obfuscate(const LeafPath& truth, Rng* rng) const {
  TBF_DCHECK(static_cast<int>(truth.size()) == depth_) << "leaf depth mismatch";
  // Walk upward from the true leaf; at level i keep climbing w.p. pu_i.
  int turn_level = 0;
  while (turn_level <= depth_ &&
         rng->Bernoulli(upward_prob_[static_cast<size_t>(turn_level)])) {
    ++turn_level;
  }
  if (turn_level == 0) return truth;  // turned immediately: output x itself

  // Descend: first step must leave the subtree we came from, so pick a
  // uniform digit different from the truth's; below that, uniform digits.
  LeafPath out = truth;
  const size_t first = static_cast<size_t>(depth_ - turn_level);
  int old_digit = static_cast<int>(truth[first]);
  int pick = static_cast<int>(rng->UniformInt(0, arity_ - 2));
  if (pick >= old_digit) ++pick;
  out[first] = static_cast<char16_t>(pick);
  for (size_t pos = first + 1; pos < out.size(); ++pos) {
    out[pos] = static_cast<char16_t>(rng->UniformInt(0, arity_ - 1));
  }
  return out;
}

Result<LeafPath> HstMechanism::SampleNaive(const LeafPath& truth, Rng* rng,
                                           double max_leaves) const {
  TBF_ASSIGN_OR_RETURN(std::vector<LeafPath> leaves, EnumerateLeaves(max_leaves));
  // Single-pass inverse-CDF over the exact distribution (Alg. 2 line 1-2).
  double target = rng->Uniform01();
  double acc = 0.0;
  for (const LeafPath& leaf : leaves) {
    acc += Probability(truth, leaf);
    if (target < acc) return leaf;
  }
  return leaves.back();  // numerical slack: acc summed to slightly below 1
}

double HstMechanism::LogProbability(const LeafPath& x, const LeafPath& z) const {
  int level = LcaLevel(x, z);
  return log_weight_[static_cast<size_t>(level)] - log_total_weight_;
}

double HstMechanism::Probability(const LeafPath& x, const LeafPath& z) const {
  return std::exp(LogProbability(x, z));
}

double HstMechanism::LevelProbability(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return std::exp(log_level_total_[static_cast<size_t>(level)] - log_total_weight_);
}

double HstMechanism::LogWeight(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return log_weight_[static_cast<size_t>(level)];
}

double HstMechanism::UpwardProbability(int level) const {
  TBF_CHECK(level >= 0 && level <= depth_) << "level out of range";
  return upward_prob_[static_cast<size_t>(level)];
}

double HstMechanism::WalkProbability(const LeafPath& x, const LeafPath& z) const {
  const int level = LcaLevel(x, z);
  // log(1 - pu_i) = log(level share of tw_i), exact even when pu_i ~ 1.
  auto log_turn = [this](int i) {
    return log_level_total_[static_cast<size_t>(i)] -
           log_tail_weight_[static_cast<size_t>(i)];
  };
  if (level == 0) return std::exp(log_turn(0));
  // Climb probability: sum_{i<level} log pu_i, precomputed at Build time.
  double log_p = log_turn(level) + log_upward_prefix_[static_cast<size_t>(level)];
  // Downward choices: 1/(c-1) for the first step, 1/c for each step below.
  log_p -= std::log(static_cast<double>(arity_ - 1));
  log_p -= (level - 1) * std::log(static_cast<double>(arity_));
  return std::exp(log_p);
}

Result<std::vector<LeafPath>> HstMechanism::EnumerateLeaves(double max_leaves) const {
  double total = std::pow(static_cast<double>(arity_), depth_);
  if (total > max_leaves) {
    return Status::OutOfRange("complete tree too large to enumerate");
  }
  std::vector<LeafPath> leaves;
  leaves.reserve(static_cast<size_t>(total));
  LeafPath current(static_cast<size_t>(depth_), 0);
  while (true) {
    leaves.push_back(current);
    // Increment the digit string (odometer, least-significant digit last).
    int pos = depth_ - 1;
    while (pos >= 0) {
      if (static_cast<int>(current[static_cast<size_t>(pos)]) + 1 < arity_) {
        ++current[static_cast<size_t>(pos)];
        break;
      }
      current[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return leaves;
}

}  // namespace tbf
