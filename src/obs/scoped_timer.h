// ScopedTimer — RAII latency hook built on WallTimer.
//
// One construction-time clock read, one at destruction. The elapsed time
// lands in up to two places:
//
//   * a `double* seconds` accumulator (always, even with metrics compiled
//     out — this is the functional timing the replay report and BENCH
//     JSON depend on, bit-compatible with the manual
//     `WallTimer t; ...; acc += t.ElapsedSeconds();` pattern it replaces);
//   * a Histogram, in nanoseconds (subject to the metrics switches).
//
// Either sink may be null. For hot loops that only need the histogram,
// construct with the histogram alone; when metrics are disabled that
// constructor skips the clock reads entirely.

#pragma once

#include <cstdint>

#include "common/timer.h"
#include "obs/metrics.h"

namespace tbf {
namespace obs {

class ScopedTimer {
 public:
  /// Accumulates into `*seconds` (may be null) and records ns into
  /// `histogram` (may be null).
  explicit ScopedTimer(double* seconds, Histogram* histogram = nullptr)
      : seconds_(seconds), histogram_(histogram), armed_(true) {}

  /// Histogram-only timing: free when metrics are off (no clock reads).
  explicit ScopedTimer(Histogram* histogram)
      : seconds_(nullptr),
        histogram_(histogram),
        armed_(histogram != nullptr && internal::Enabled()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Flushes the elapsed time into the sinks early (idempotent).
  void Stop() {
    if (!armed_) return;
    armed_ = false;
    const double elapsed = timer_.ElapsedSeconds();
    if (seconds_ != nullptr) *seconds_ += elapsed;
    if (histogram_ != nullptr) {
      histogram_->Record(elapsed <= 0.0
                             ? 0
                             : static_cast<uint64_t>(elapsed * 1e9));
    }
  }

 private:
  WallTimer timer_;
  double* seconds_;
  Histogram* histogram_;
  bool armed_;
};

}  // namespace obs
}  // namespace tbf
