#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tbf {
namespace obs {

namespace {

// Splits `name{a="b"}` into base name and the inner label list (empty when
// the name carries no label block).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";  // exporters never emit NaN/inf
  // Integers print exactly; everything else with enough digits to
  // round-trip a double.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendSample(std::ostream& out, const std::string& base,
                  const std::string& labels, const std::string& extra_label,
                  const std::string& value) {
  out << base;
  if (!labels.empty() || !extra_label.empty()) {
    out << '{' << labels;
    if (!labels.empty() && !extra_label.empty()) out << ',';
    out << extra_label << '}';
  }
  out << ' ' << value << '\n';
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string base, labels;
  std::string last_typed;  // emit one # TYPE line per base name
  for (const CounterSample& counter : snapshot.counters) {
    SplitLabels(counter.name, &base, &labels);
    if (base != last_typed) {
      out << "# TYPE " << base << " counter\n";
      last_typed = base;
    }
    AppendSample(out, base, labels, "", FormatDouble(counter.value));
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    SplitLabels(gauge.name, &base, &labels);
    if (base != last_typed) {
      out << "# TYPE " << base << " gauge\n";
      last_typed = base;
    }
    AppendSample(out, base, labels, "",
                 FormatDouble(static_cast<double>(gauge.value)));
  }
  for (const HistogramSample& histogram : snapshot.histograms) {
    SplitLabels(histogram.name, &base, &labels);
    if (base != last_typed) {
      out << "# TYPE " << base << " histogram\n";
      last_typed = base;
    }
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t in_bucket = histogram.buckets[static_cast<size_t>(i)];
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      char le[64];
      std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"",
                    Histogram::BucketUpper(i));
      char value[32];
      std::snprintf(value, sizeof(value), "%" PRIu64, cumulative);
      AppendSample(out, base + "_bucket", labels, le, value);
    }
    {
      char value[32];
      std::snprintf(value, sizeof(value), "%" PRIu64, histogram.count);
      AppendSample(out, base + "_bucket", labels, "le=\"+Inf\"", value);
    }
    AppendSample(out, base + "_sum", labels, "",
                 FormatDouble(static_cast<double>(histogram.sum)));
    {
      char value[32];
      std::snprintf(value, sizeof(value), "%" PRIu64, histogram.count);
      AppendSample(out, base + "_count", labels, "", value);
    }
  }
  return out.str();
}

std::string ToJsonLine(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << '{';
  out << "\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << JsonEscape(snapshot.counters[i].name)
        << "\":" << FormatDouble(snapshot.counters[i].value);
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << JsonEscape(snapshot.gauges[i].name)
        << "\":" << FormatDouble(static_cast<double>(snapshot.gauges[i].value));
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) out << ',';
    out << '"' << JsonEscape(h.name) << "\":{"
        << "\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"mean\":" << FormatDouble(h.Mean())
        << ",\"p50\":" << FormatDouble(h.Quantile(0.50))
        << ",\"p95\":" << FormatDouble(h.Quantile(0.95))
        << ",\"p99\":" << FormatDouble(h.Quantile(0.99)) << '}';
  }
  out << "}}";
  return out.str();
}

void WriteJsonLine(const MetricsSnapshot& snapshot, std::ostream* out) {
  (*out) << ToJsonLine(snapshot) << '\n';
}

}  // namespace obs
}  // namespace tbf
