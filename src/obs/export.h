// Snapshot exporters: Prometheus text exposition format and a JSON-lines
// writer whose flat numeric records sit next to the BENCH_*.json
// trajectory in CI artifacts.
//
// Both exporters consume a MetricsSnapshot (plain data), so they never
// touch registry locks or the hot path; call them from the reporter
// thread or after a run.

#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace tbf {
namespace obs {

/// \brief Prometheus text exposition (version 0.0.4).
///
/// Counters and gauges emit one sample line each; histograms emit
/// cumulative `_bucket{le="..."}` lines for every non-empty bucket plus
/// the closing `le="+Inf"`, `_sum` and `_count`. Registry names that
/// carry a `{label="value"}` block keep those labels, merged with `le`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// \brief One JSON object per call, no trailing newline:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"mean":..,
///                          "p50":..,"p95":..,"p99":..}}}
/// Values are finite numbers; names are JSON-escaped. Appending one line
/// per interval yields a JSON-lines flight log.
std::string ToJsonLine(const MetricsSnapshot& snapshot);

/// \brief Writes ToJsonLine(snapshot) plus '\n' to `out`.
void WriteJsonLine(const MetricsSnapshot& snapshot, std::ostream* out);

}  // namespace obs
}  // namespace tbf
