// Flight-recorder metrics core: named counters, gauges and log-scale
// latency histograms behind a MetricRegistry.
//
// Design constraints (this is serve-path instrumentation, audited by the
// operator-new counter in bench/micro_metrics.cc):
//
//   * Zero allocations and no locks on the hot path. Registration
//     (FindOrCreate*) allocates and takes the registry mutex once, up
//     front; the returned handle is a stable pointer and every mutation on
//     it (Add / Set / Record) is a handful of relaxed atomic operations.
//   * Striped atomics. Each metric keeps kStripes cache-line-aligned
//     slots; a thread picks its stripe once (thread_local) and never
//     contends with neighbours on other cores. Stripes are merged only at
//     Snapshot() time.
//   * Fixed-bucket log-scale histograms. 64 power-of-two buckets over
//     nanoseconds: bucket 0 holds [0, 2), bucket i >= 1 holds
//     [2^i, 2^(i+1)). The bucket index is branchless —
//     63 - countl_zero(value | 1) — so Record costs one bit scan and two
//     relaxed fetch_adds. The ns..s latency range lands in buckets 0..30;
//     the remaining buckets make any uint64 recordable without clamping
//     branches.
//
// Two off switches:
//   * Runtime: SetMetricsEnabled(false) turns every mutation into a
//     single relaxed load + branch (used by the overhead bench to measure
//     the instrumented-vs-bare delta inside one binary).
//   * Compile time: -DTBF_METRICS_DISABLED (CMake -DTBF_METRICS=OFF)
//     compiles every mutation to an empty inline body; registries still
//     exist but snapshots are empty. No call site needs an #ifdef.
//
// Snapshot()/Delta() give interval semantics: counters and histograms
// subtract (monotone, so deltas are non-negative), gauges keep the newer
// value. Exporters live in obs/export.h; the periodic reporter in
// obs/reporter.h.

#pragma once

#include <atomic>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tbf {
namespace obs {

/// \brief Runtime master switch (default on). Mutations on every handle
/// become near-free no-ops when disabled; snapshots still work (they
/// report whatever was recorded while enabled).
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

namespace internal {

inline constexpr int kStripes = 8;  // power of two

extern std::atomic<bool> g_metrics_enabled;

inline bool Enabled() {
#ifdef TBF_METRICS_DISABLED
  return false;
#else
  return g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

/// Stripe of the calling thread: assigned round-robin on first use, so up
/// to kStripes concurrent writers never share a cache line.
int StripeIndex();

struct alignas(64) CounterStripe {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) DoubleStripe {
  std::atomic<double> value{0.0};
};

}  // namespace internal

/// \brief Monotone uint64 counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled()) return;
    stripes_[static_cast<size_t>(internal::StripeIndex())].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over stripes (relaxed; exact once writers are quiescent).
  uint64_t Value() const;

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::array<internal::CounterStripe, internal::kStripes> stripes_;
};

/// \brief Monotone double counter (epsilon spend and other real-valued
/// accumulations). fetch_add on atomic<double> is C++20.
class DoubleCounter {
 public:
  void Add(double v) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled()) return;
    stripes_[static_cast<size_t>(internal::StripeIndex())].value.fetch_add(
        v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  double Value() const;

 private:
  friend class MetricRegistry;
  DoubleCounter() = default;
  std::array<internal::DoubleStripe, internal::kStripes> stripes_;
};

/// \brief Last-write-wins instantaneous value (pool sizes, epoch index).
class Gauge {
 public:
  void Set(int64_t v) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(int64_t delta) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed 64-bucket power-of-two histogram over uint64 values
/// (by convention nanoseconds). See the header comment for the bucket map.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Branchless bucket index: 0 for {0, 1}, else floor(log2(v)).
  static int BucketIndex(uint64_t v) {
    return 63 - std::countl_zero(v | 1);
  }

  /// Inclusive-exclusive bounds [Lower, Upper) of bucket i.
  static uint64_t BucketLower(int i) {
    return i == 0 ? 0 : (uint64_t{1} << i);
  }
  static uint64_t BucketUpper(int i) {
    return i >= 63 ? ~uint64_t{0} : (uint64_t{1} << (i + 1));
  }

  void Record(uint64_t value) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled()) return;
    Stripe& s = stripes_[static_cast<size_t>(internal::StripeIndex())];
    s.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Records `value` n times at O(1) cost (batch attribution, e.g. the
  /// per-report share of one batched obfuscation pass).
  void RecordN(uint64_t value, uint64_t n) {
#ifndef TBF_METRICS_DISABLED
    if (!internal::Enabled() || n == 0) return;
    Stripe& s = stripes_[static_cast<size_t>(internal::StripeIndex())];
    s.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
        n, std::memory_order_relaxed);
    s.sum.fetch_add(value * n, std::memory_order_relaxed);
#else
    (void)value;
    (void)n;
#endif
  }

  uint64_t Count() const;

 private:
  friend class MetricRegistry;
  Histogram() = default;

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Stripe, internal::kStripes> stripes_;
};

// ------------------------------- snapshots --------------------------------

struct CounterSample {
  std::string name;
  double value = 0.0;  ///< uint64 counters are exact up to 2^53
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// covering bucket; 0 when empty. Power-of-two buckets bound the error
  /// by a factor of 2 — flight-recorder accuracy, not a benchmark timer.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Bucket-wise accumulation (commutative and associative).
  void MergeFrom(const HistogramSample& other);
};

/// \brief Point-in-time merged view of one registry; plain data, safe to
/// copy/ship across threads. Vectors are sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// this - earlier, matching by name: counters/histograms subtract,
  /// gauges keep this snapshot's value. Names absent from `earlier` pass
  /// through whole.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// nullptr when absent.
  const CounterSample* FindCounter(const std::string& name) const;
  const GaugeSample* FindGauge(const std::string& name) const;
  const HistogramSample* FindHistogram(const std::string& name) const;

  /// Counter value by name, or `fallback` when absent.
  double CounterValue(const std::string& name, double fallback = 0.0) const;
};

// ------------------------------- registry ---------------------------------

/// \brief Owner and namespace of metrics. Handles returned by
/// FindOrCreate* are valid for the registry's lifetime; calling
/// FindOrCreate* again with the same name returns the same handle.
///
/// Names follow Prometheus conventions: `tbf_serve_assigned_total` or,
/// with labels, `tbf_serve_assigned_total{shard="3"}` (the exporter
/// splits the label block). Creating the same name as two different
/// metric kinds is a programming error (CHECK-fails).
///
/// Thread-safe. One process-wide instance lives behind Global(); local
/// registries (e.g. one per replay run) isolate interval accounting from
/// unrelated traffic.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricRegistry* Global();

  Counter* FindOrCreateCounter(const std::string& name);
  DoubleCounter* FindOrCreateDoubleCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  /// Merged view of every metric registered so far.
  MetricsSnapshot Snapshot() const;

  /// \brief Accumulates a saved snapshot into this registry (counters and
  /// histogram buckets add, gauges take the snapshot value) — the inverse
  /// of Snapshot(), used by checkpoint resume to carry pre-crash totals
  /// into a fresh registry. Metrics already registered keep their kind;
  /// unknown counter names are registered as Counter when the value is a
  /// non-negative integer and DoubleCounter otherwise, so restore AFTER
  /// constructing the components that register their own metrics. No-op
  /// while metrics are disabled.
  void Merge(const MetricsSnapshot& snapshot);

  /// Number of registered metrics (all kinds).
  size_t size() const;

 private:
  enum class Kind { kCounter, kDoubleCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<DoubleCounter> double_counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => snapshots sorted
};

/// \brief Builds a `name{label="value"}` metric name (registration-time
/// helper; never call on a hot path).
std::string LabeledName(const std::string& name, const std::string& label,
                        const std::string& value);

}  // namespace obs
}  // namespace tbf
