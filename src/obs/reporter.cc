#include "obs/reporter.h"

#include <utility>

#include "common/logging.h"

namespace tbf {
namespace obs {

MetricsReporter::MetricsReporter(MetricRegistry* registry,
                                 std::chrono::milliseconds interval, Sink sink)
    : registry_(registry), interval_(interval), sink_(std::move(sink)) {
  TBF_CHECK(registry_ != nullptr);
  TBF_CHECK(interval_.count() > 0) << "reporter interval must be positive";
  TBF_CHECK(sink_ != nullptr);
}

MetricsReporter::~MetricsReporter() { Stop(); }

void MetricsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void MetricsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool MetricsReporter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void MetricsReporter::Run() {
  MetricsSnapshot previous;  // empty: first delta equals the first snapshot
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval_, [this] { return stop_requested_; });
      stopping = stop_requested_;
    }
    MetricsSnapshot total = registry_->Snapshot();
    sink_(total, total.Delta(previous));
    previous = std::move(total);
    if (stopping) return;  // final flush already emitted
  }
}

}  // namespace obs
}  // namespace tbf
