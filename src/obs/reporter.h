// MetricsReporter — periodic background snapshotter.
//
// Every `interval` the reporter thread snapshots one registry, computes
// the delta against the previous snapshot, and hands both to a sink. The
// sink runs on the reporter thread; typical sinks append a JSON line
// (obs/export.h) or push Prometheus text at a scrape endpoint.
//
// Lifecycle: Start() spawns the thread (idempotent), Stop() wakes it and
// joins (idempotent, always emits one final flush so short-lived runs are
// never unrecorded); the destructor calls Stop(). The registry must
// outlive the reporter.

#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace tbf {
namespace obs {

class MetricsReporter {
 public:
  /// \param total full snapshot at this tick; \param delta change since
  /// the previous tick (first tick: delta == total).
  using Sink = std::function<void(const MetricsSnapshot& total,
                                  const MetricsSnapshot& delta)>;

  MetricsReporter(MetricRegistry* registry, std::chrono::milliseconds interval,
                  Sink sink);
  ~MetricsReporter();

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  void Start();

  /// Stops the thread after one final snapshot+sink flush.
  void Stop();

  bool running() const;

 private:
  void Run();

  MetricRegistry* registry_;
  std::chrono::milliseconds interval_;
  Sink sink_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace tbf
