#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tbf {
namespace obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{true};

int StripeIndex() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::CounterStripe& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

double DoubleCounter::Value() const {
  double total = 0.0;
  for (const internal::DoubleStripe& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    for (const std::atomic<uint64_t>& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double HistogramSample::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = static_cast<double>(Histogram::BucketLower(i));
      const double upper = static_cast<double>(Histogram::BucketUpper(i));
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(in_bucket), 0.0, 1.0);
      return lower + fraction * (upper - lower);
    }
  }
  return static_cast<double>(
      Histogram::BucketUpper(Histogram::kBuckets - 1));  // unreachable
}

void HistogramSample::MergeFrom(const HistogramSample& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

namespace {

template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         const std::string& name) {
  auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& s, const std::string& n) { return s.name < n; });
  return it != samples.end() && it->name == name ? &*it : nullptr;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.counters.reserve(counters.size());
  for (const CounterSample& now : counters) {
    CounterSample d = now;
    if (const CounterSample* was = FindByName(earlier.counters, now.name)) {
      d.value -= was->value;
    }
    delta.counters.push_back(std::move(d));
  }
  delta.gauges = gauges;  // instantaneous: the newer value is the delta view
  delta.histograms.reserve(histograms.size());
  for (const HistogramSample& now : histograms) {
    HistogramSample d = now;
    if (const HistogramSample* was =
            FindByName(earlier.histograms, now.name)) {
      d.count -= was->count;
      d.sum -= was->sum;
      for (size_t i = 0; i < d.buckets.size(); ++i) {
        d.buckets[i] -= was->buckets[i];
      }
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

const CounterSample* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  return FindByName(counters, name);
}

const GaugeSample* MetricsSnapshot::FindGauge(const std::string& name) const {
  return FindByName(gauges, name);
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

double MetricsSnapshot::CounterValue(const std::string& name,
                                     double fallback) const {
  const CounterSample* sample = FindCounter(name);
  return sample ? sample->value : fallback;
}

MetricRegistry* MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    TBF_CHECK(it->second.kind == kind)
        << "metric '" << name << "' re-registered as a different kind";
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::unique_ptr<Counter>(new Counter());
      break;
    case Kind::kDoubleCounter:
      entry.double_counter = std::unique_ptr<DoubleCounter>(new DoubleCounter());
      break;
    case Kind::kGauge:
      entry.gauge = std::unique_ptr<Gauge>(new Gauge());
      break;
    case Kind::kHistogram:
      entry.histogram = std::unique_ptr<Histogram>(new Histogram());
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricRegistry::FindOrCreateCounter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

DoubleCounter* MetricRegistry::FindOrCreateDoubleCounter(
    const std::string& name) {
  return FindOrCreate(name, Kind::kDoubleCounter)->double_counter.get();
}

Gauge* MetricRegistry::FindOrCreateGauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::FindOrCreateHistogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {  // map order => sorted by name
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.push_back(
            {name, static_cast<double>(entry.counter->Value())});
        break;
      case Kind::kDoubleCounter:
        snapshot.counters.push_back({name, entry.double_counter->Value()});
        break;
      case Kind::kGauge:
        snapshot.gauges.push_back({name, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        HistogramSample sample;
        sample.name = name;
        for (const Histogram::Stripe& stripe : entry.histogram->stripes_) {
          for (int i = 0; i < Histogram::kBuckets; ++i) {
            const uint64_t n =
                stripe.buckets[static_cast<size_t>(i)].load(
                    std::memory_order_relaxed);
            sample.buckets[static_cast<size_t>(i)] += n;
            sample.count += n;
          }
          sample.sum += stripe.sum.load(std::memory_order_relaxed);
        }
        snapshot.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return snapshot;
}

void MetricRegistry::Merge(const MetricsSnapshot& snapshot) {
  if (!internal::Enabled()) return;
  for (const CounterSample& sample : snapshot.counters) {
    Kind kind;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(sample.name);
      if (it != entries_.end()) {
        kind = it->second.kind;
      } else {
        const bool integral = sample.value >= 0.0 &&
                              sample.value == std::floor(sample.value) &&
                              sample.value <= 0x1.0p53;
        kind = integral ? Kind::kCounter : Kind::kDoubleCounter;
      }
    }
    if (kind == Kind::kCounter) {
      FindOrCreateCounter(sample.name)
          ->Add(static_cast<uint64_t>(sample.value));
    } else if (kind == Kind::kDoubleCounter) {
      FindOrCreateDoubleCounter(sample.name)->Add(sample.value);
    }
    // A counter sample colliding with a gauge/histogram name cannot come
    // from Snapshot(); drop it rather than CHECK-fail on corrupt input.
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    FindOrCreateGauge(sample.name)->Set(sample.value);
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    Histogram* histogram = FindOrCreateHistogram(sample.name);
    // Buckets land in stripe 0 (friend access): the public Record API
    // cannot reproduce an arbitrary (bucket, sum) pair exactly.
    Histogram::Stripe& stripe = histogram->stripes_[0];
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      stripe.buckets[static_cast<size_t>(i)].fetch_add(
          sample.buckets[static_cast<size_t>(i)], std::memory_order_relaxed);
    }
    stripe.sum.fetch_add(sample.sum, std::memory_order_relaxed);
  }
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string LabeledName(const std::string& name, const std::string& label,
                        const std::string& value) {
  return name + "{" + label + "=\"" + value + "\"}";
}

}  // namespace obs
}  // namespace tbf
