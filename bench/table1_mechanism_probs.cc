// Regenerates paper Table I and Examples 1-3: the exact four-point HST
// (beta = 1/2, pi = <o1,o2,o3,o4>), the mechanism's per-level weights and
// probabilities at eps = 0.1, and the random-walk parameters — plus a
// sampled histogram showing Alg. 3 matches the exact distribution.

#include <cmath>
#include <iostream>
#include <map>

#include "common/cli.h"
#include "common/table.h"
#include "core/hst_mechanism.h"
#include "hst/complete_hst.h"

using namespace tbf;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double eps = args.GetDouble("eps", 0.1);
  const int samples = static_cast<int>(args.GetInt("samples", 200000));

  // Example 1: o1(1,1) o2(2,3) o3(5,3) o4(4,4).
  std::vector<Point> points = {{1, 1}, {2, 3}, {5, 3}, {4, 4}};
  Rng rng(3);
  HstTreeOptions tree_options;
  tree_options.beta = 0.5;
  tree_options.normalize = false;
  tree_options.permutation = {0, 1, 2, 3};
  auto tree =
      CompleteHst::BuildFromPoints(points, EuclideanMetric(), &rng, tree_options);
  if (!tree.ok()) {
    std::cerr << tree.status() << "\n";
    return 1;
  }
  auto mech = HstMechanism::Build(*tree, eps);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }
  std::cout << "Example 1 complete HST: depth " << tree->depth() << ", arity "
            << tree->arity() << " (paper: D = 4, c = 2)\n\n";

  AsciiTable table1("Table I: probability of leaf nodes being the obfuscated"
                    " nodes (eps = " + std::to_string(eps) + ")",
                    {"level i", "|L_i(o1)|", "wt_i", "probability"});
  for (int level = 0; level <= tree->depth(); ++level) {
    double count = level == 0 ? 1 : tree->SiblingSetSize(level);
    table1.AddRow({AsciiTable::Num(level), AsciiTable::Num(count),
                   AsciiTable::Num(std::exp(mech->LogWeight(level))),
                   AsciiTable::Num(std::exp(mech->LogWeight(level) -
                                            mech->LogTotalWeight()))});
  }
  table1.Print();
  std::cout << "paper row reference: wt = 1, 0.670, 0.301, 0.061, 0.002;"
               " prob = 0.394, 0.264, 0.119, 0.024, 0.001\n\n";

  AsciiTable example3("Example 3: random-walk upward probabilities",
                      {"level i", "pu_i"});
  for (int level = 0; level <= tree->depth(); ++level) {
    example3.AddRow({AsciiTable::Num(level),
                     AsciiTable::Num(mech->UpwardProbability(level))});
  }
  example3.Print();
  std::cout << "paper reference: pu_0 = 0.606, pu_1 = 0.564\n\n";

  // Alg. 3 sampling vs the exact distribution, aggregated by LCA level.
  Rng sample_rng(11);
  const LeafPath& x = tree->leaf_of_point(0);
  std::map<int, int> level_counts;
  for (int i = 0; i < samples; ++i) {
    ++level_counts[LcaLevel(x, mech->Obfuscate(x, &sample_rng))];
  }
  AsciiTable sampled("Alg. 3 sampling check (" + std::to_string(samples) +
                         " draws from o1)",
                     {"level i", "exact level prob", "sampled frequency"});
  for (int level = 0; level <= tree->depth(); ++level) {
    sampled.AddRow(
        {AsciiTable::Num(level), AsciiTable::Num(mech->LevelProbability(level)),
         AsciiTable::Num(static_cast<double>(level_counts[level]) / samples)});
  }
  sampled.Print();
  return 0;
}
