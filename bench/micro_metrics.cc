// Microbenchmarks of the flight-recorder metrics core (google-benchmark):
// per-op cost of Counter::Add / Histogram::Record / ScopedTimer, the cost
// of a Snapshot, and the acceptance gate of the whole subsystem — a full
// serve replay measured with metrics on vs off must stay within 2%
// (overhead_percent in BENCH_micro_metrics.json).
//
// The hot-path rows also audit the allocator: mutations on registered
// handles must never touch the heap (the operator-new replacement below
// counts every allocation in the process; audits read deltas).

#include <benchmark/benchmark.h>

#include "bench/json_main.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>

#include "core/tbf.h"
#include "geo/grid.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "serve/replay.h"
#include "workload/synthetic.h"

// Global allocation counter feeding the zero-allocation assertions below
// (same pattern as bench/micro_mechanism.cc). GCC's mismatch checker pairs
// the replacement delete with the *default* new and warns spuriously — new
// and delete are replaced together here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static std::atomic<size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace tbf {
namespace {

// Runs `op` 10k times and skips the benchmark when the heap was touched.
// Registration (FindOrCreate*) happens before the audit on purpose — only
// mutations on resolved handles carry the zero-alloc contract.
template <typename Op>
bool AuditZeroAlloc(benchmark::State& state, Op&& op) {
  const size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) op();
  const size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  state.counters["audit_allocs_per_10k"] = static_cast<double>(allocs);
  if (allocs != 0) {
    state.SkipWithError("metrics hot path allocated");
    return false;
  }
  return true;
}

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.FindOrCreateCounter("bench_counter_total");
  if (!AuditZeroAlloc(state, [&] { counter->Add(1); })) return;
  for (auto _ : state) {
    counter->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

// The runtime off switch: one relaxed load + branch per call.
void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.FindOrCreateCounter("bench_counter_total");
  obs::SetMetricsEnabled(false);
  for (auto _ : state) {
    counter->Add(1);
  }
  obs::SetMetricsEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Histogram* hist = registry.FindOrCreateHistogram("bench_latency_ns");
  uint64_t value = 1;
  if (!AuditZeroAlloc(state, [&] { hist->Record(value++); })) return;
  for (auto _ : state) {
    hist->Record(value++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// Two steady_clock reads + one Record — the full cost ScopedTimer adds to
// an instrumented scope.
void BM_ScopedTimerHistogram(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Histogram* hist = registry.FindOrCreateHistogram("bench_scope_ns");
  if (!AuditZeroAlloc(state, [&] { obs::ScopedTimer timer(hist); })) return;
  for (auto _ : state) {
    obs::ScopedTimer timer(hist);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerHistogram);

// Snapshot is the cold path: it allocates by design (merged plain-data
// copy) — this row prices it per registered metric.
void BM_Snapshot(benchmark::State& state) {
  obs::MetricRegistry registry;
  const int metrics = static_cast<int>(state.range(0));
  for (int i = 0; i < metrics; ++i) {
    registry.FindOrCreateCounter("bench_counter_" + std::to_string(i))->Add(1);
  }
  registry.FindOrCreateHistogram("bench_latency_ns")->Record(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Snapshot());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["metrics"] = metrics;
}
BENCHMARK(BM_Snapshot)->Arg(16)->Arg(64);

// ------------------------ end-to-end overhead gate ------------------------

struct ServeWorkload {
  TbfFramework framework;
  EventTrace trace;
};

const ServeWorkload& GetWorkload() {
  static ServeWorkload* cached = [] {
    Rng rng(3);
    auto grid = UniformGridPoints(BBox::Square(200), 32);
    TbfOptions options;
    options.epsilon = 0.6;
    options.sampler = SamplerKind::kInverseCdf;
    auto framework = TbfFramework::Build(std::move(grid).MoveValueUnsafe(),
                                         EuclideanMetric(), &rng, options);
    SyntheticEventConfig config;
    config.base.num_workers = 10000;
    config.base.num_tasks = 5000;
    config.base.seed = 17;
    config.horizon_seconds = 600.0;
    config.departure_probability = 0.05;
    auto trace = GenerateEventTrace(config);
    return new ServeWorkload{std::move(framework).MoveValueUnsafe(),
                             std::move(trace).MoveValueUnsafe()};
  }();
  return *cached;
}

double ReplayEventsPerSecond(const ServeWorkload& workload, bool metrics_on,
                             benchmark::State& state) {
  obs::SetMetricsEnabled(metrics_on);
  ReplayOptions options;
  options.epoch_seconds = 30.0;
  options.num_shards = 1;
  options.threads = 1;
  auto report = RunEventReplay(workload.framework, workload.trace, options);
  obs::SetMetricsEnabled(true);
  if (!report.ok()) {
    state.SkipWithError(report.status().ToString().c_str());
    return -1.0;
  }
  return report->events_per_second;
}

// The acceptance gate: the same 10k-worker replay with instrumentation
// live vs runtime-disabled. Best-of-3 interleaved runs on each side damp
// scheduler noise; overhead_percent must stay under 2.
void BM_MetricsOverhead(benchmark::State& state) {
  const ServeWorkload& workload = GetWorkload();
  ReplayEventsPerSecond(workload, true, state);  // warm caches and traces
  double best_on = 0.0;
  double best_off = 0.0;
  for (int round = 0; round < 3; ++round) {
    best_off = std::max(best_off, ReplayEventsPerSecond(workload, false, state));
    best_on = std::max(best_on, ReplayEventsPerSecond(workload, true, state));
  }
  if (best_on < 0.0 || best_off < 0.0) return;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReplayEventsPerSecond(workload, true, state));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.trace.events.size()));
  state.counters["events_per_second_on"] = best_on;
  state.counters["events_per_second_off"] = best_off;
  state.counters["overhead_percent"] =
      best_off > 0.0 ? 100.0 * (best_off - best_on) / best_off : 0.0;
}
BENCHMARK(BM_MetricsOverhead)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("micro_metrics");
