// Figure 8 (c, d, g, h): the matching-size case study on the simulated
// Chengdu data — Prob vs TBF, varying |W| and eps. Reachable radii
// U[500, 1000] m, normalized with the coordinates to the 200-unit frame.
//
//   --sweep=W|eps|all
//   --days=N   days to average (default 3; paper mode 30)

#include <functional>

#include "bench/bench_common.h"
#include "workload/chengdu.h"

using namespace tbf;
using namespace tbf::bench;

namespace {

CaseStudyInstance MakeDay(int day, int workers, const BenchOptions& options) {
  ChengduCaseStudyConfig config;
  config.base.day = day;
  config.base.num_workers = workers;
  config.base.min_tasks_per_day = Scaled(4245, options);
  config.base.max_tasks_per_day = Scaled(5034, options);
  CaseStudyInstance instance =
      Unwrap(GenerateChengduCaseStudy(config), "generate chengdu case study");
  NormalizeToSquare(&instance, 200.0);
  return instance;
}

AveragedMetrics AverageOverDays(CaseStudyAlgorithm algorithm, int workers,
                                double eps, int days,
                                const BenchOptions& options) {
  AveragedMetrics total;
  for (int day = 0; day < days; ++day) {
    CaseStudyInstance instance = MakeDay(day, workers, options);
    CaseStudyConfig config;
    config.pipeline.epsilon = eps;
    config.pipeline.grid_side = options.grid_side;
    config.pipeline.seed = options.seed + static_cast<uint64_t>(day);
    AveragedMetrics m = Unwrap(
        RunRepeatedCaseStudy(algorithm, instance, config, options.repeats),
        "run case study");
    total.algorithm = m.algorithm;
    total.matching_size += m.matching_size;
    total.notifications += m.notifications;
    total.match_seconds += m.match_seconds;
    total.memory_mb = std::max(total.memory_mb, m.memory_mb);
    total.repeats += m.repeats;
  }
  total.matching_size /= days;
  total.notifications /= days;
  total.match_seconds /= days;
  return total;
}

FigureSeries::PanelSelection CaseStudyPanels() {
  FigureSeries::PanelSelection panels;
  panels.total_distance = false;
  panels.memory_mb = false;
  panels.matching_size = true;
  panels.match_seconds = true;
  return panels;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Figure 8c/8g + 8d/8h: case study (real data)");
  const std::string sweep = args.GetString("sweep", "all");
  const int days =
      static_cast<int>(args.GetInt("days", options.paper ? 30 : 3));

  if (sweep == "W" || sweep == "all") {
    FigureSeries series("Fig 8c/8g — real data matching size, varying |W|",
                        "|W|");
    for (int paper_w : {6000, 7000, 8000, 9000, 10000}) {
      int workers = Scaled(paper_w, options);
      for (CaseStudyAlgorithm algorithm :
           {CaseStudyAlgorithm::kProb, CaseStudyAlgorithm::kTbf}) {
        series.Add(AsciiTable::Num(workers),
                   AverageOverDays(algorithm, workers, 0.2, days, options));
      }
    }
    series.PrintTables(CaseStudyPanels());
    WriteSeries(series, options, "fig8_real_W.csv");
    std::cout << "\n";
  }

  if (sweep == "eps" || sweep == "all") {
    FigureSeries series("Fig 8d/8h — real data matching size, varying eps",
                        "eps");
    const int workers = Scaled(8000, options);
    for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      for (CaseStudyAlgorithm algorithm :
           {CaseStudyAlgorithm::kProb, CaseStudyAlgorithm::kTbf}) {
        series.Add(AsciiTable::Num(eps),
                   AverageOverDays(algorithm, workers, eps, days, options));
      }
    }
    series.PrintTables(CaseStudyPanels());
    WriteSeries(series, options, "fig8_real_eps.csv");
  }
  return 0;
}
