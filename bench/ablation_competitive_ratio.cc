// Beyond-paper validation: empirical competitive ratios of TBF against the
// offline Hungarian OPT (Def. 8), swept over eps and over the predefined
// point count N — next to the Theorem 3 shape (1/eps^4) log N log^2 k.
// Instance sizes stay small because OPT is O(k^2 n).

#include <functional>

#include "bench/bench_common.h"
#include "core/theory.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

namespace {

double AverageRatio(Algorithm algorithm, double eps, int grid_side, int seeds,
                    const BenchOptions& options, int tasks, int workers) {
  double total = 0;
  for (int s = 0; s < seeds; ++s) {
    SyntheticConfig config;
    config.num_tasks = tasks;
    config.num_workers = workers;
    config.seed = options.seed + static_cast<uint64_t>(s) * 97;
    OnlineInstance instance =
        Unwrap(GenerateSynthetic(config), "generate synthetic");
    PipelineConfig pipeline;
    pipeline.epsilon = eps;
    pipeline.grid_side = grid_side;
    pipeline.seed = options.seed + static_cast<uint64_t>(s);
    RunMetrics algo =
        Unwrap(RunPipeline(algorithm, instance, pipeline), "run algorithm");
    RunMetrics opt = Unwrap(
        RunPipeline(Algorithm::kOfflineOptimal, instance, pipeline), "run OPT");
    total += algo.total_distance / opt.total_distance;
  }
  return total / seeds;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args, /*default_factor=*/1.0);
  PrintModeBanner(options, "Ablation: empirical competitive ratio vs OPT");
  const int tasks = static_cast<int>(args.GetInt("tasks", 150));
  const int workers = static_cast<int>(args.GetInt("workers", 300));
  const int seeds = static_cast<int>(args.GetInt("seeds", 3));

  AsciiTable by_eps("competitive ratio vs eps (grid 32x32, k = " +
                        std::to_string(tasks) + ")",
                    {"eps", "CR(TBF)", "CR(Lap-GR)", "CR(NoPriv)",
                     "Thm3 shape (no constants)"});
  for (double eps : {0.1, 0.2, 0.4, 0.8, 1.6}) {
    by_eps.AddRow(
        {AsciiTable::Num(eps),
         AsciiTable::Num(
             AverageRatio(Algorithm::kTbf, eps, 32, seeds, options, tasks, workers)),
         AsciiTable::Num(AverageRatio(Algorithm::kLapGr, eps, 32, seeds, options,
                                      tasks, workers)),
         AsciiTable::Num(AverageRatio(Algorithm::kNoPrivacyGreedy, eps, 32, seeds,
                                      options, tasks, workers)),
         AsciiTable::Num(Theorem3RatioShape(eps, 1024, tasks))});
  }
  by_eps.Print();
  std::cout << "\n";

  AsciiTable by_n("competitive ratio vs predefined point count N (eps = 0.6)",
                  {"grid", "N", "CR(TBF)", "Thm3 shape (no constants)"});
  for (int side : {8, 16, 24, 32, 48}) {
    by_n.AddRow({AsciiTable::Num(side), AsciiTable::Num(side * side),
                 AsciiTable::Num(AverageRatio(Algorithm::kTbf, 0.6, side, seeds,
                                              options, tasks, workers)),
                 AsciiTable::Num(Theorem3RatioShape(0.6, side * side, tasks))});
  }
  by_n.Print();
  std::cout << "\nNote: Theorem 3 is an upper bound in O() notation; columns"
               " compare growth shapes, not absolute values.\n";
  return 0;
}
