// Shared plumbing for the figure benches.
//
// Every figure bench accepts:
//   --paper          run the paper's full parameter settings (slow)
//   --factor=F       size multiplier for the quick default mode
//   --repeats=R      repetitions per configuration (paper used 10)
//   --outdir=DIR     where CSV series are written (default bench_results)
//   --seed=S         master seed
// Quick mode scales the paper's instance sizes down so the whole bench
// suite finishes in minutes; shapes are preserved.

#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "exp/experiment.h"

namespace tbf {
namespace bench {

struct BenchOptions {
  bool paper = false;
  double factor = 0.2;  ///< instance-size multiplier in quick mode
  int repeats = 1;
  int grid_side = 32;  ///< predefined-point grid (N = grid_side^2)
  std::string outdir = "bench_results";
  uint64_t seed = 7;
};

inline BenchOptions ParseBenchOptions(const ArgParser& args,
                                      double default_factor = 0.2) {
  BenchOptions options;
  options.paper = args.GetBool("paper", false);
  options.factor = options.paper ? 1.0 : args.GetDouble("factor", default_factor);
  options.repeats = static_cast<int>(args.GetInt("repeats", options.paper ? 10 : 1));
  options.grid_side = static_cast<int>(args.GetInt("grid", 32));
  options.outdir = args.GetString("outdir", "bench_results");
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  return options;
}

/// Scales a paper-sized count down in quick mode (at least 1).
inline int Scaled(int paper_count, const BenchOptions& options) {
  return std::max(1, static_cast<int>(paper_count * options.factor));
}

/// Writes a series CSV under outdir; logs a note on failure instead of
/// aborting the bench.
inline void WriteSeries(const FigureSeries& series, const BenchOptions& options,
                        const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories(options.outdir, ec);
  Status status = series.WriteCsv(options.outdir + "/" + filename);
  if (!status.ok()) {
    std::cerr << "note: could not write " << filename << ": " << status << "\n";
  } else {
    std::cout << "(series written to " << options.outdir << "/" << filename
              << ")\n";
  }
}

/// Aborts the process with a message when a Result failed.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).MoveValueUnsafe();
}

inline void PrintModeBanner(const BenchOptions& options, const char* name) {
  std::cout << "### " << name << " — "
            << (options.paper ? "PAPER settings"
                              : "quick mode (use --paper for full settings)")
            << ", repeats=" << options.repeats << ", size factor "
            << options.factor << "\n\n";
}

}  // namespace bench
}  // namespace tbf
