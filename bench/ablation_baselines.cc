// Beyond-paper ablation: where does TBF's utility come from?
//
//   NoPriv-GR  no privacy, Euclidean greedy            (utility ceiling)
//   Lap-GR     continuous noise, no discretization     (paper baseline)
//   Exp-GR     discretization, no tree                 (new ablation)
//   Lap-HG     continuous noise + tree matching        (paper baseline)
//   TBF        discretization + tree mechanism + tree matching (the paper)
//
// Also ablates HST-greedy tie-breaking: canonical (deterministic) vs
// uniform-random (Bansal-style randomization).

#include <functional>

#include "bench/bench_common.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "matching/hst_greedy.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Ablation: baseline decomposition");

  SyntheticConfig config;
  config.num_tasks = Scaled(3000, options);
  config.num_workers = Scaled(5000, options);
  config.seed = options.seed;
  OnlineInstance instance =
      Unwrap(GenerateSynthetic(config), "generate synthetic");

  FigureSeries series("baseline decomposition across eps", "eps");
  for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (Algorithm algorithm :
         {Algorithm::kNoPrivacyGreedy, Algorithm::kLapGr, Algorithm::kExpGr,
          Algorithm::kLapHg, Algorithm::kTbf}) {
      PipelineConfig pipeline;
      pipeline.epsilon = eps;
      pipeline.grid_side = options.grid_side;
      pipeline.seed = options.seed;
      AveragedMetrics metrics =
          Unwrap(RunRepeated(algorithm, instance, pipeline, options.repeats),
                 "run pipeline");
      series.Add(AsciiTable::Num(eps), metrics);
    }
  }
  FigureSeries::PanelSelection panels;
  panels.memory_mb = false;
  series.PrintTables(panels);
  WriteSeries(series, options, "ablation_baselines.csv");
  std::cout << "\n";

  // Tie-breaking ablation: run TBF's matcher with both policies on the
  // same obfuscated inputs.
  AsciiTable tie_table("HST-greedy tie-breaking (TBF inputs, eps = 0.2)",
                       {"policy", "total true distance"});
  // Build the obfuscated inputs once via the TBF pipeline internals: use
  // RunPipeline for canonical, and replicate with random tie-break by
  // re-running the framework manually.
  {
    PipelineConfig pipeline;
    pipeline.epsilon = 0.2;
    pipeline.grid_side = options.grid_side;
    pipeline.seed = options.seed;
    RunMetrics canonical =
        Unwrap(RunPipeline(Algorithm::kTbf, instance, pipeline), "run TBF");
    tie_table.AddRow({"canonical", AsciiTable::Num(canonical.total_distance)});
  }
  {
    // Random tie-break: reuse the framework pieces directly.
    Rng rng(options.seed);
    Rng tree_rng = rng.Split(0);
    Rng obf_rng = rng.Split(1);
    Rng tie_rng = rng.Split(2);
    auto grid = Unwrap(UniformGridPoints(instance.region, options.grid_side),
                       "grid");
    EuclideanMetric metric;
    TbfOptions tbf_options;
    tbf_options.epsilon = 0.2;
    auto framework = Unwrap(
        TbfFramework::Build(std::move(grid), metric, &tree_rng, tbf_options),
        "build framework");
    std::vector<LeafPath> workers;
    for (const Point& w : instance.workers) {
      workers.push_back(framework.ObfuscateLocation(w, &obf_rng));
    }
    std::vector<LeafPath> tasks;
    for (const Point& t : instance.tasks) {
      tasks.push_back(framework.ObfuscateLocation(t, &obf_rng));
    }
    HstGreedyMatcher matcher(workers, framework.tree().depth(),
                             framework.tree().arity(), HstEngine::kIndex,
                             HstTieBreak::kUniformRandom, &tie_rng);
    double total = 0;
    for (size_t t = 0; t < tasks.size(); ++t) {
      int w = matcher.Assign(tasks[t]);
      if (w >= 0) {
        total += EuclideanDistance(instance.tasks[t],
                                   instance.workers[static_cast<size_t>(w)]);
      }
    }
    tie_table.AddRow({"uniform-random", AsciiTable::Num(total)});
  }
  tie_table.Print();
  return 0;
}
