// Microbenchmarks of HST construction (google-benchmark).
//
// Reference-vs-fast comparison rows pair up by the N counter:
// BM_HstBuildReference (the seed's O(N^2 D) Algorithm 1) against
// BM_HstBuildFast (grid-accelerated min-rank builder, bit-identical tree)
// on the same point sets, up to N = 100k. A 1M-point CompleteHst smoke row
// hides behind --big (pass it before the --benchmark_* flags). The
// min-rank query rows audit the allocator: the level-assignment inner loop
// must never touch the heap.

#include <benchmark/benchmark.h>

#include "bench/json_main.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/rank_index.h"
#include "hst/complete_hst.h"
#include "hst/snapshot.h"

// Global allocation counter feeding the zero-allocation assertions below
// (same idiom as micro_mechanism.cc): replacing operator new counts every
// heap allocation of the process; the audits only ever read deltas.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static std::atomic<size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace tbf {
namespace {

// One shared point set per size: comparison rows must measure the same
// input, and generation at 1M is not free.
const std::vector<Point>& GetPoints(int count) {
  static std::map<int, std::vector<Point>>* cache =
      new std::map<int, std::vector<Point>>();
  auto it = cache->find(count);
  if (it == cache->end()) {
    Rng rng(42);
    auto pts = RandomUniformPoints(BBox::Square(200), count, &rng);
    it = cache->emplace(count, std::move(pts).MoveValueUnsafe()).first;
  }
  return it->second;
}

// The seed's quadratic Algorithm 1, kept as the comparison baseline.
void BM_HstBuildReference(benchmark::State& state) {
  const std::vector<Point>& points = GetPoints(static_cast<int>(state.range(0)));
  EuclideanMetric metric;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = HstTree::BuildReference(points, metric, &rng);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = static_cast<double>(points.size());
}
BENCHMARK(BM_HstBuildReference)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The grid-accelerated builder on the identical inputs (and identical
// seeds, so it constructs the identical trees). The threads axis exercises
// the thread-pool fan-out; on a single-core host every row is sequential.
void BM_HstBuildFast(benchmark::State& state) {
  const std::vector<Point>& points = GetPoints(static_cast<int>(state.range(0)));
  EuclideanMetric metric;
  HstTreeOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = HstTree::Build(points, metric, &rng, options);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = static_cast<double>(points.size());
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_HstBuildFast)
    ->Args({1024, 1})
    ->Args({4096, 1})
    ->Args({16384, 1})
    ->Args({100000, 1})
    ->Args({100000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_CompleteHstBuild(benchmark::State& state) {
  const std::vector<Point>& points = GetPoints(static_cast<int>(state.range(0)));
  EuclideanMetric metric;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = CompleteHst::BuildFromPoints(points, metric, &rng);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = static_cast<double>(points.size());
}
BENCHMARK(BM_CompleteHstBuild)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// One shared CompleteHst per size for the snapshot rows (building the
// 100k tree once is the whole point — the rows measure the alternative).
const CompleteHst& GetTree(int count) {
  static std::map<int, CompleteHst>* cache = new std::map<int, CompleteHst>();
  auto it = cache->find(count);
  if (it == cache->end()) {
    EuclideanMetric metric;
    Rng rng(13);
    auto tree = CompleteHst::BuildFromPoints(GetPoints(count), metric, &rng);
    it = cache->emplace(count, std::move(tree).MoveValueUnsafe()).first;
  }
  return it->second;
}

void BM_HstSnapshotSerialize(benchmark::State& state) {
  const CompleteHst& tree = GetTree(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = SerializeHstSnapshot(tree);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["N"] = static_cast<double>(tree.num_points());
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_HstSnapshotSerialize)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The restart path: loading the published tree from its snapshot instead
// of rebuilding. Pair this row with BM_CompleteHstBuild at the same N —
// the acceptance bar is >= 20x faster at N = 100k (the parse only
// re-validates and rebuilds the leaf-lookup tables; the nearest-point
// mapper is lazy and first paid by the first MapToNearest* call).
void BM_HstSnapshotParse(benchmark::State& state) {
  const CompleteHst& tree = GetTree(static_cast<int>(state.range(0)));
  const std::string blob = SerializeHstSnapshot(tree);
  for (auto _ : state) {
    auto parsed = ParseHstSnapshot(blob);
    if (!parsed.ok()) {
      state.SkipWithError("snapshot parse failed");
      return;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["N"] = static_cast<double>(tree.num_points());
  state.counters["bytes"] = static_cast<double>(blob.size());
}
BENCHMARK(BM_HstSnapshotParse)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The level-assignment inner loop in isolation: min-rank ball queries on
// the grid and k-d paths, with the zero-allocation audit (10k queries
// outside the timed loop must not allocate once).
void MinRankQueryRow(benchmark::State& state, bool use_grid) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<Point>& points = GetPoints(n);
  Rng rng(7);
  std::vector<int> pi = rng.Permutation(n);
  std::vector<Point> centers(points.size());
  std::vector<int> rank_of(points.size());
  for (int j = 0; j < n; ++j) {
    centers[static_cast<size_t>(j)] = points[static_cast<size_t>(pi[static_cast<size_t>(j)])];
    rank_of[static_cast<size_t>(pi[static_cast<size_t>(j)])] = j;
  }
  MinRankBallIndex index(std::move(centers), MetricKind::kEuclidean, 1.0);
  const double scaled_radius = 2.5;  // mid-level ball: a handful of covers
  const double prune_radius = scaled_radius * (1.0 + 1e-9);
  if (use_grid && !index.PrepareGrid(prune_radius)) {
    state.SkipWithError("grid refused the radius");
    return;
  }

  const size_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  int sink = 0;
  for (int i = 0; i < 10000; ++i) {
    const size_t u = static_cast<size_t>(i) % points.size();
    sink += index.MinCoveringRank(points[u], scaled_radius, prune_radius,
                                  rank_of[u], use_grid);
  }
  benchmark::DoNotOptimize(sink);
  const size_t audit_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  if (audit_allocs != 0) {
    state.SkipWithError("MinCoveringRank allocated on the query path");
    return;
  }

  size_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.MinCoveringRank(
        points[u], scaled_radius, prune_radius, rank_of[u], use_grid));
    u = (u + 1) % points.size();
  }
  state.counters["N"] = static_cast<double>(n);
  state.counters["audit_allocs_per_10k"] = static_cast<double>(audit_allocs);
}

void BM_MinRankQueryGrid(benchmark::State& state) { MinRankQueryRow(state, true); }
void BM_MinRankQueryKd(benchmark::State& state) { MinRankQueryRow(state, false); }
BENCHMARK(BM_MinRankQueryGrid)->Arg(16384)->Arg(100000);
BENCHMARK(BM_MinRankQueryKd)->Arg(16384)->Arg(100000);

void BM_TreeDistance(benchmark::State& state) {
  const std::vector<Point>& points = GetPoints(1024);
  EuclideanMetric metric;
  Rng rng(5);
  auto tree = CompleteHst::BuildFromPoints(points, metric, &rng);
  const LeafPath& a = tree->leaf_of_point(0);
  const LeafPath& b = tree->leaf_of_point(tree->num_points() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->TreeDistance(a, b));
  }
}
BENCHMARK(BM_TreeDistance);

}  // namespace

// --big smoke: a full million-point publish-side build (Algorithm 1 +
// complete-tree padding + leaf paths + nearest-point mapper), all
// hardware threads. One iteration — the row exists to prove city-scale
// construction completes, not to average it. Outside the anonymous
// namespace so main() can register it conditionally.
void BM_CompleteHstBuildBig(benchmark::State& state) {
  const std::vector<Point>& points = GetPoints(1000000);
  EuclideanMetric metric;
  HstTreeOptions options;
  options.num_threads = 0;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = CompleteHst::BuildFromPoints(points, metric, &rng, options);
    if (!tree.ok()) {
      state.SkipWithError("1M-point build failed");
      return;
    }
    state.counters["nodes_points"] = static_cast<double>(tree->num_points());
    state.counters["depth"] = static_cast<double>(tree->depth());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = 1e6;
}

}  // namespace tbf

int main(int argc, char** argv) {
  bool big = false;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--big") == 0) {
      big = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (big) {
    benchmark::RegisterBenchmark("BM_CompleteHstBuildBig",
                                 tbf::BM_CompleteHstBuildBig)
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  return tbf::bench::RunBenchmarksWithJsonDefault(
      static_cast<int>(args.size()), args.data(), "micro_hst_build");
}
