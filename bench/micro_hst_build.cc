// Microbenchmarks of HST construction (google-benchmark): Alg. 1 is
// O(N^2 D) plus the complete-tree bookkeeping.

#include <benchmark/benchmark.h>

#include "bench/json_main.h"

#include "hst/complete_hst.h"
#include "geo/grid.h"

namespace tbf {
namespace {

std::vector<Point> GridPoints(int side) {
  auto grid = UniformGridPoints(BBox::Square(200), side);
  return std::move(grid).MoveValueUnsafe();
}

void BM_HstTreeBuild(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<Point> points = GridPoints(side);
  EuclideanMetric metric;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = HstTree::Build(points, metric, &rng);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = side * side;
}
BENCHMARK(BM_HstTreeBuild)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_CompleteHstBuild(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<Point> points = GridPoints(side);
  EuclideanMetric metric;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto tree = CompleteHst::BuildFromPoints(points, metric, &rng);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["N"] = side * side;
}
BENCHMARK(BM_CompleteHstBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_TreeDistance(benchmark::State& state) {
  std::vector<Point> points = GridPoints(32);
  EuclideanMetric metric;
  Rng rng(5);
  auto tree = CompleteHst::BuildFromPoints(points, metric, &rng);
  const LeafPath& a = tree->leaf_of_point(0);
  const LeafPath& b = tree->leaf_of_point(tree->num_points() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->TreeDistance(a, b));
  }
}
BENCHMARK(BM_TreeDistance);

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("micro_hst_build");
