// Figure 7 (c, g, k) and (d, h, l): the real-data experiments on the
// simulated Chengdu trips — varying |W| and varying eps. As in the paper,
// each configuration runs on every selected day and reports the average.
// Coordinates are normalized to the 200-unit frame (1 unit = 50 m) so the
// eps range matches the synthetic experiments (DESIGN.md).
//
//   --sweep=W|eps|all   which panel set to run (default all)
//   --days=N            how many of the 30 days to average (default 3,
//                       paper mode runs all 30)

#include <functional>

#include "bench/bench_common.h"
#include "workload/chengdu.h"

using namespace tbf;
using namespace tbf::bench;

namespace {

OnlineInstance MakeDay(int day, int workers, const BenchOptions& options) {
  ChengduConfig config;
  config.day = day;
  config.num_workers = workers;
  config.min_tasks_per_day = Scaled(4245, options);
  config.max_tasks_per_day = Scaled(5034, options);
  OnlineInstance instance = Unwrap(GenerateChengdu(config), "generate chengdu");
  NormalizeToSquare(&instance, 200.0);
  return instance;
}

// Averages one algorithm over `days` days at the given configuration.
AveragedMetrics AverageOverDays(Algorithm algorithm, int workers, double eps,
                                int days, const BenchOptions& options) {
  AveragedMetrics total;
  for (int day = 0; day < days; ++day) {
    OnlineInstance instance = MakeDay(day, workers, options);
    PipelineConfig pipeline;
    pipeline.epsilon = eps;
    pipeline.grid_side = options.grid_side;
    pipeline.seed = options.seed + static_cast<uint64_t>(day);
    AveragedMetrics m =
        Unwrap(RunRepeated(algorithm, instance, pipeline, options.repeats),
               "run pipeline");
    total.algorithm = m.algorithm;
    total.total_distance += m.total_distance;
    total.matched += m.matched;
    total.match_seconds += m.match_seconds;
    total.build_seconds += m.build_seconds;
    total.obfuscate_seconds += m.obfuscate_seconds;
    total.memory_mb = std::max(total.memory_mb, m.memory_mb);
    total.repeats += m.repeats;
  }
  total.total_distance /= days;
  total.matched /= days;
  total.match_seconds /= days;
  total.build_seconds /= days;
  total.obfuscate_seconds /= days;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Figure 7c/7g/7k + 7d/7h/7l: real data (simulated Chengdu)");
  const std::string sweep = args.GetString("sweep", "all");
  const int days =
      static_cast<int>(args.GetInt("days", options.paper ? 30 : 3));

  constexpr Algorithm kAlgorithms[] = {Algorithm::kLapGr, Algorithm::kLapHg,
                                       Algorithm::kTbf};

  if (sweep == "W" || sweep == "all") {
    FigureSeries series("Fig 7c/7g/7k — real data, varying |W|", "|W|");
    for (int paper_w : {6000, 7000, 8000, 9000, 10000}) {
      int workers = Scaled(paper_w, options);
      for (Algorithm algorithm : kAlgorithms) {
        series.Add(AsciiTable::Num(workers),
                   AverageOverDays(algorithm, workers, 0.2, days, options));
      }
    }
    series.PrintTables();
    WriteSeries(series, options, "fig7_real_W.csv");
    std::cout << "\n";
  }

  if (sweep == "eps" || sweep == "all") {
    FigureSeries series("Fig 7d/7h/7l — real data, varying eps", "eps");
    const int workers = Scaled(8000, options);
    for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      for (Algorithm algorithm : kAlgorithms) {
        series.Add(AsciiTable::Num(eps),
                   AverageOverDays(algorithm, workers, eps, days, options));
      }
    }
    series.PrintTables();
    WriteSeries(series, options, "fig7_real_eps.csv");
  }
  return 0;
}
