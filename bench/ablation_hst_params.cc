// Beyond-paper ablations of the design choices DESIGN.md calls out:
//   1. predefined-point grid granularity (N) vs TBF distance & build cost,
//   2. tree randomness (beta, permutation) vs run-to-run variance,
//   3. matcher engine: the paper's O(D n) scan vs the availability index.

#include <algorithm>
#include <functional>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "matching/hst_greedy.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Ablation: HST parameters and engines");

  SyntheticConfig data_config;
  data_config.num_tasks = Scaled(3000, options);
  data_config.num_workers = Scaled(5000, options);
  data_config.seed = options.seed;
  OnlineInstance instance =
      Unwrap(GenerateSynthetic(data_config), "generate synthetic");

  // --- 1. Grid granularity. ---
  AsciiTable grid_table("predefined grid granularity (eps = 0.6)",
                        {"grid", "N", "TBF total distance", "HST build (s)",
                         "obfuscate+match (s)"});
  for (int side : {8, 16, 24, 32, 48, 64}) {
    PipelineConfig pipeline;
    pipeline.grid_side = side;
    pipeline.seed = options.seed;
    RunMetrics m =
        Unwrap(RunPipeline(Algorithm::kTbf, instance, pipeline), "run TBF");
    grid_table.AddRow({AsciiTable::Num(side), AsciiTable::Num(side * side),
                       AsciiTable::Num(m.total_distance),
                       AsciiTable::Num(m.build_seconds),
                       AsciiTable::Num(m.obfuscate_seconds + m.match_seconds)});
  }
  grid_table.Print();
  std::cout << "\n";

  // --- 2. Tree randomness: distance spread across independent trees. ---
  RunningStat spread;
  for (uint64_t tree_seed = 0; tree_seed < 10; ++tree_seed) {
    PipelineConfig pipeline;
    pipeline.seed = tree_seed;  // re-randomizes beta, permutation, mechanism
    RunMetrics m =
        Unwrap(RunPipeline(Algorithm::kTbf, instance, pipeline), "run TBF");
    spread.Add(m.total_distance);
  }
  AsciiTable randomness("tree randomness across 10 seeds (beta, pi, noise)",
                        {"metric", "value"});
  randomness.AddRow({"mean total distance", AsciiTable::Num(spread.mean())});
  randomness.AddRow({"stddev", AsciiTable::Num(spread.stddev())});
  randomness.AddRow({"min", AsciiTable::Num(spread.min())});
  randomness.AddRow({"max", AsciiTable::Num(spread.max())});
  randomness.AddRow(
      {"coefficient of variation",
       AsciiTable::Num(spread.stddev() / std::max(1e-12, spread.mean()))});
  randomness.Print();
  std::cout << "\n";

  // --- 3. Matcher engine: scan vs index at growing worker counts. ---
  AsciiTable engines("HST-greedy engine: paper scan O(Dn) vs index O(cD)",
                     {"|W|", "scan secs", "index secs", "speedup"});
  Rng tree_rng(5);
  EuclideanMetric metric;
  TbfFramework framework = Unwrap(
      TbfFramework::Build(Unwrap(UniformGridPoints(instance.region, 32), "grid"),
                          metric, &tree_rng),
      "build framework");
  for (int workers : {Scaled(2000, options), Scaled(5000, options),
                      Scaled(10000, options), Scaled(20000, options)}) {
    Rng rng(static_cast<uint64_t>(workers));
    std::vector<LeafPath> leaves;
    leaves.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      Point p{rng.Uniform(0, 200), rng.Uniform(0, 200)};
      leaves.push_back(framework.ObfuscateLocation(p, &rng));
    }
    std::vector<LeafPath> tasks;
    for (int i = 0; i < workers / 2; ++i) {
      Point p{rng.Uniform(0, 200), rng.Uniform(0, 200)};
      tasks.push_back(framework.ObfuscateLocation(p, &rng));
    }
    double scan_secs = 0, index_secs = 0;
    {
      HstGreedyMatcher matcher(leaves, framework.tree().depth(),
                               framework.tree().arity(), HstEngine::kLinearScan);
      WallTimer timer;
      for (const LeafPath& t : tasks) matcher.Assign(t);
      scan_secs = timer.ElapsedSeconds();
    }
    {
      HstGreedyMatcher matcher(leaves, framework.tree().depth(),
                               framework.tree().arity(), HstEngine::kIndex);
      WallTimer timer;
      for (const LeafPath& t : tasks) matcher.Assign(t);
      index_secs = timer.ElapsedSeconds();
    }
    engines.AddRow({AsciiTable::Num(workers), AsciiTable::Num(scan_secs),
                    AsciiTable::Num(index_secs),
                    AsciiTable::Num(scan_secs / std::max(1e-9, index_secs))});
  }
  engines.Print();
  return 0;
}
