// Figure 7 (a, e, i): synthetic data, varying the privacy budget eps —
// total distance, running time and memory for Lap-GR, Lap-HG, TBF.
// The paper's headline plot: the Laplace baselines blow up at small eps
// while TBF stays flat.

#include "bench/bench_common.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Figure 7a/7e/7i: varying epsilon (synthetic)");

  SyntheticConfig config;
  config.num_tasks = Scaled(3000, options);
  config.num_workers = Scaled(5000, options);
  config.seed = options.seed;
  OnlineInstance instance =
      Unwrap(GenerateSynthetic(config), "generate synthetic");

  FigureSeries series("Fig 7a/7e/7i — varying eps", "eps");
  for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (Algorithm algorithm :
         {Algorithm::kLapGr, Algorithm::kLapHg, Algorithm::kTbf}) {
      PipelineConfig pipeline;
      pipeline.epsilon = eps;
      pipeline.grid_side = options.grid_side;
      pipeline.seed = options.seed;
      AveragedMetrics metrics =
          Unwrap(RunRepeated(algorithm, instance, pipeline, options.repeats),
                 "run pipeline");
      series.Add(AsciiTable::Num(eps), metrics);
    }
  }
  series.PrintTables();
  WriteSeries(series, options, "fig7_epsilon.csv");
  return 0;
}
