// Microbenchmarks of the matchers (google-benchmark): one full online
// episode (all tasks assigned) per iteration, so per-assignment cost is
// time / #tasks. Compares the paper's scan engines with the indexed ones,
// and the flat node-pool availability index against the map-based golden
// reference (steady-state nearest queries, up to 100k workers). Emits
// BENCH_micro_matching.json (see json_main.h).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "bench/json_main.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "hst/hst_map_index.h"
#include "matching/greedy_euclid.h"
#include "matching/hst_greedy.h"
#include "matching/runner.h"
#include "workload/synthetic.h"

namespace tbf {
namespace {

std::vector<Point> RandomPoints(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(0, 200), rng.Uniform(0, 200)});
  }
  return points;
}

void RunEuclidEpisode(benchmark::State& state, GreedyEngine engine) {
  const int workers = static_cast<int>(state.range(0));
  const int tasks = workers / 2;
  std::vector<Point> worker_points = RandomPoints(workers, 1);
  std::vector<Point> task_points = RandomPoints(tasks, 2);
  for (auto _ : state) {
    GreedyEuclidMatcher matcher(worker_points, engine);
    for (const Point& t : task_points) {
      benchmark::DoNotOptimize(matcher.Assign(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}

void BM_EuclidGreedyLinear(benchmark::State& state) {
  RunEuclidEpisode(state, GreedyEngine::kLinearScan);
}
BENCHMARK(BM_EuclidGreedyLinear)->Arg(1000)->Arg(4000);

void BM_EuclidGreedyKdTree(benchmark::State& state) {
  RunEuclidEpisode(state, GreedyEngine::kKdTree);
}
BENCHMARK(BM_EuclidGreedyKdTree)->Arg(1000)->Arg(4000)->Arg(16000);

struct HstData {
  std::vector<LeafPath> workers;
  std::vector<LeafPath> tasks;
  int depth;
  int arity;
};

HstData MakeHstData(int workers) {
  Rng rng(3);
  EuclideanMetric metric;
  auto grid = UniformGridPoints(BBox::Square(200), 32);
  TbfOptions options;
  auto framework =
      TbfFramework::Build(std::move(grid).MoveValueUnsafe(), metric, &rng, options);
  HstData data;
  data.depth = framework->tree().depth();
  data.arity = framework->tree().arity();
  Rng obf(4);
  for (const Point& p : RandomPoints(workers, 5)) {
    data.workers.push_back(framework->ObfuscateLocation(p, &obf));
  }
  for (const Point& p : RandomPoints(workers / 2, 6)) {
    data.tasks.push_back(framework->ObfuscateLocation(p, &obf));
  }
  return data;
}

void RunHstEpisode(benchmark::State& state, HstEngine engine) {
  HstData data = MakeHstData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    HstGreedyMatcher matcher(data.workers, data.depth, data.arity, engine);
    for (const LeafPath& t : data.tasks) {
      benchmark::DoNotOptimize(matcher.Assign(t));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.tasks.size()));
}

void BM_HstGreedyScan(benchmark::State& state) {
  RunHstEpisode(state, HstEngine::kLinearScan);
}
BENCHMARK(BM_HstGreedyScan)->Arg(1000)->Arg(4000);

void BM_HstGreedyIndex(benchmark::State& state) {
  RunHstEpisode(state, HstEngine::kIndex);
}
BENCHMARK(BM_HstGreedyIndex)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(100000);

// --- Availability-index engines head to head: steady-state Nearest ---
// The acceptance gate for the flat engine: >= 5x over the map-based
// reference at n = 100k workers.
//
// A production deployment publishes a grid fine enough to resolve its user
// density, so the index runs sparse: far more leaves than workers, and the
// nearest worker typically sits several levels up. Model that shape
// directly (depth 12, arity 4 — 16.7M logical leaves) with uniform random
// worker/query leaves; the index only ever sees (depth, arity) + leaf
// paths, so no O(n^2) tree construction is needed at 100k.

template <typename Index>
void RunNearestQueries(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int depth = 12;
  const int arity = 4;
  Rng rng(41);
  Index index(depth, arity);
  for (int i = 0; i < workers; ++i) {
    index.Insert(RandomLeafPath(depth, arity, &rng), i);
  }
  std::vector<LeafPath> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(RandomLeafPath(depth, arity, &rng));
  }
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Nearest(queries[next]));
    next = (next + 1) % queries.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NearestMapIndex(benchmark::State& state) {
  RunNearestQueries<HstAvailabilityMapIndex>(state);
}
BENCHMARK(BM_NearestMapIndex)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NearestFlatIndex(benchmark::State& state) {
  RunNearestQueries<HstAvailabilityIndex>(state);
}
BENCHMARK(BM_NearestFlatIndex)->Arg(1000)->Arg(10000)->Arg(100000);

// --- End-to-end TBF pipeline throughput (tasks assigned per second) ---
// kLinearScan reproduces the seed configuration; kIndex is the batched
// flat-engine pipeline. Target: >= 3x at large n.

void RunTbfPipeline(benchmark::State& state, HstEngine engine) {
  const int workers = static_cast<int>(state.range(0));
  SyntheticConfig config;
  config.num_workers = workers;
  config.num_tasks = workers / 2;
  config.seed = 17;
  auto instance = GenerateSynthetic(config);
  PipelineConfig pipeline;
  pipeline.hst_engine = engine;
  for (auto _ : state) {
    auto metrics = RunPipeline(Algorithm::kTbf, *instance, pipeline);
    if (!metrics.ok()) {
      state.SkipWithError("pipeline failed");
      return;
    }
    benchmark::DoNotOptimize(metrics->total_distance);
  }
  state.SetItemsProcessed(state.iterations() * config.num_tasks);
}

void BM_TbfPipelineScan(benchmark::State& state) {
  RunTbfPipeline(state, HstEngine::kLinearScan);
}
BENCHMARK(BM_TbfPipelineScan)->Unit(benchmark::kMillisecond)->Arg(16000);

void BM_TbfPipelineBatchIndex(benchmark::State& state) {
  RunTbfPipeline(state, HstEngine::kIndex);
}
BENCHMARK(BM_TbfPipelineBatchIndex)
    ->Unit(benchmark::kMillisecond)
    ->Arg(16000)
    ->Arg(100000);

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("micro_matching");
