// Microbenchmarks of the matchers (google-benchmark): one full online
// episode (all tasks assigned) per iteration, so per-assignment cost is
// time / #tasks. Compares the paper's scan engines with the indexed ones.

#include <benchmark/benchmark.h>

#include "core/tbf.h"
#include "geo/grid.h"
#include "matching/greedy_euclid.h"
#include "matching/hst_greedy.h"

namespace tbf {
namespace {

std::vector<Point> RandomPoints(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(0, 200), rng.Uniform(0, 200)});
  }
  return points;
}

void RunEuclidEpisode(benchmark::State& state, GreedyEngine engine) {
  const int workers = static_cast<int>(state.range(0));
  const int tasks = workers / 2;
  std::vector<Point> worker_points = RandomPoints(workers, 1);
  std::vector<Point> task_points = RandomPoints(tasks, 2);
  for (auto _ : state) {
    GreedyEuclidMatcher matcher(worker_points, engine);
    for (const Point& t : task_points) {
      benchmark::DoNotOptimize(matcher.Assign(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}

void BM_EuclidGreedyLinear(benchmark::State& state) {
  RunEuclidEpisode(state, GreedyEngine::kLinearScan);
}
BENCHMARK(BM_EuclidGreedyLinear)->Arg(1000)->Arg(4000);

void BM_EuclidGreedyKdTree(benchmark::State& state) {
  RunEuclidEpisode(state, GreedyEngine::kKdTree);
}
BENCHMARK(BM_EuclidGreedyKdTree)->Arg(1000)->Arg(4000)->Arg(16000);

struct HstData {
  std::vector<LeafPath> workers;
  std::vector<LeafPath> tasks;
  int depth;
  int arity;
};

HstData MakeHstData(int workers) {
  Rng rng(3);
  EuclideanMetric metric;
  auto grid = UniformGridPoints(BBox::Square(200), 32);
  TbfOptions options;
  auto framework =
      TbfFramework::Build(std::move(grid).MoveValueUnsafe(), metric, &rng, options);
  HstData data;
  data.depth = framework->tree().depth();
  data.arity = framework->tree().arity();
  Rng obf(4);
  for (const Point& p : RandomPoints(workers, 5)) {
    data.workers.push_back(framework->ObfuscateLocation(p, &obf));
  }
  for (const Point& p : RandomPoints(workers / 2, 6)) {
    data.tasks.push_back(framework->ObfuscateLocation(p, &obf));
  }
  return data;
}

void RunHstEpisode(benchmark::State& state, HstEngine engine) {
  HstData data = MakeHstData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    HstGreedyMatcher matcher(data.workers, data.depth, data.arity, engine);
    for (const LeafPath& t : data.tasks) {
      benchmark::DoNotOptimize(matcher.Assign(t));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.tasks.size()));
}

void BM_HstGreedyScan(benchmark::State& state) {
  RunHstEpisode(state, HstEngine::kLinearScan);
}
BENCHMARK(BM_HstGreedyScan)->Arg(1000)->Arg(4000);

void BM_HstGreedyIndex(benchmark::State& state) {
  RunHstEpisode(state, HstEngine::kIndex);
}
BENCHMARK(BM_HstGreedyIndex)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace tbf

BENCHMARK_MAIN();
