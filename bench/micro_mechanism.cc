// Microbenchmarks of the privacy mechanisms (google-benchmark):
// the complexity claims of Sec. III-C/D — Alg. 2 enumerates O(c^D) leaves,
// Alg. 3 walks O(D) — plus the planar Laplace baseline sampler.

#include <benchmark/benchmark.h>

#include "bench/json_main.h"

#include <map>

#include "core/hst_mechanism.h"
#include "geo/grid.h"
#include "privacy/planar_laplace.h"

namespace tbf {
namespace {

// One shared tree/mechanism per grid side (built lazily, reused across
// iterations — construction cost is measured separately below).
struct Setup {
  CompleteHst tree;
  HstMechanism mechanism;
};

const Setup& GetSetup(int grid_side) {
  static std::map<int, Setup>* cache = new std::map<int, Setup>();
  auto it = cache->find(grid_side);
  if (it == cache->end()) {
    Rng rng(7);
    EuclideanMetric metric;
    auto grid = UniformGridPoints(BBox::Square(200), grid_side);
    auto tree = CompleteHst::BuildFromPoints(*grid, metric, &rng);
    auto mech = HstMechanism::Build(*tree, 0.6);
    it = cache
             ->emplace(grid_side,
                       Setup{std::move(tree).MoveValueUnsafe(),
                             std::move(mech).MoveValueUnsafe()})
             .first;
  }
  return it->second;
}

// Algorithm 3: O(D) per sample regardless of arity.
void BM_RandomWalkObfuscate(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(1);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.Obfuscate(x, &rng));
  }
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
}
BENCHMARK(BM_RandomWalkObfuscate)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Algorithm 2: O(c^D) per sample — only feasible on the small tree.
void BM_NaiveSample(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(1);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  for (auto _ : state) {
    auto z = setup.mechanism.SampleNaive(x, &rng, /*max_leaves=*/1 << 22);
    if (!z.ok()) state.SkipWithError("tree too large for Alg. 2");
    benchmark::DoNotOptimize(z);
  }
  state.counters["leaves"] = setup.tree.num_leaves();
}
BENCHMARK(BM_NaiveSample)->Arg(4)->Arg(8);

// Closed-form probability evaluation (log space).
void BM_ExactProbability(benchmark::State& state) {
  const Setup& setup = GetSetup(16);
  Rng rng(2);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  LeafPath z = setup.mechanism.Obfuscate(x, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.Probability(x, z));
  }
}
BENCHMARK(BM_ExactProbability);

// Baseline: planar Laplace sampling (Lambert W based inverse CDF).
void BM_PlanarLaplace(benchmark::State& state) {
  PlanarLaplaceMechanism mechanism(0.6);
  Rng rng(3);
  Point p{100, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Obfuscate(p, &rng));
  }
}
BENCHMARK(BM_PlanarLaplace);

// Client-side mapping: nearest predefined point via the k-d tree.
void BM_MapToNearestLeaf(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    Point p{rng.Uniform(0, 200), rng.Uniform(0, 200)};
    benchmark::DoNotOptimize(setup.tree.MapToNearestLeaf(p));
  }
}
BENCHMARK(BM_MapToNearestLeaf)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("micro_mechanism");
