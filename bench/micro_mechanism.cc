// Microbenchmarks of the privacy mechanisms (google-benchmark):
// the complexity claims of Sec. III-C/D — Alg. 2 enumerates O(c^D) leaves,
// Alg. 3 walks O(D) — plus the planar Laplace baseline sampler, the
// code-native samplers (walk-vs-inverse-CDF and path-vs-code rows pair up
// by identical depth/arity counters for BENCH JSON comparisons), and the
// availability-index churn (packed insert/remove vs the LeafPath entry
// point). The inverse-CDF row also audits the allocator: one sample must
// never touch the heap.

#include <benchmark/benchmark.h>

#include "bench/json_main.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <utility>
#include <vector>

#include "core/hst_mechanism.h"
#include "geo/grid.h"
#include "hst/hst_index.h"
#include "privacy/planar_laplace.h"

// Global allocation counter feeding the zero-allocation assertions below.
// Replacing operator new in the benchmark binary counts every heap
// allocation of the process; the audits only ever read deltas. GCC's
// mismatch checker pairs the replacement delete with the *default* new and
// warns spuriously — new and delete are replaced together here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static std::atomic<size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace tbf {
namespace {

// One shared tree/mechanism per grid side (built lazily, reused across
// iterations — construction cost is measured separately below).
struct Setup {
  CompleteHst tree;
  HstMechanism mechanism;
};

const Setup& GetSetup(int grid_side) {
  static std::map<int, Setup>* cache = new std::map<int, Setup>();
  auto it = cache->find(grid_side);
  if (it == cache->end()) {
    Rng rng(7);
    EuclideanMetric metric;
    auto grid = UniformGridPoints(BBox::Square(200), grid_side);
    auto tree = CompleteHst::BuildFromPoints(*grid, metric, &rng);
    auto mech = HstMechanism::Build(*tree, 0.6);
    it = cache
             ->emplace(grid_side,
                       Setup{std::move(tree).MoveValueUnsafe(),
                             std::move(mech).MoveValueUnsafe()})
             .first;
  }
  return it->second;
}

// Algorithm 3: O(D) per sample regardless of arity.
void BM_RandomWalkObfuscate(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(1);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.Obfuscate(x, &rng));
  }
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
}
BENCHMARK(BM_RandomWalkObfuscate)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Algorithm 2: O(c^D) per sample — only feasible on the small tree.
void BM_NaiveSample(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(1);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  for (auto _ : state) {
    auto z = setup.mechanism.SampleNaive(x, &rng, /*max_leaves=*/1 << 22);
    if (!z.ok()) state.SkipWithError("tree too large for Alg. 2");
    benchmark::DoNotOptimize(z);
  }
  state.counters["leaves"] = setup.tree.num_leaves();
}
BENCHMARK(BM_NaiveSample)->Arg(4)->Arg(8);

// Closed-form probability evaluation (log space).
void BM_ExactProbability(benchmark::State& state) {
  const Setup& setup = GetSetup(16);
  Rng rng(2);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  LeafPath z = setup.mechanism.Obfuscate(x, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.Probability(x, z));
  }
}
BENCHMARK(BM_ExactProbability);

// ------------------------- code-native sampler rows -----------------------
// Exact (depth, arity) shapes via FromParts — the mechanism only reads the
// shape and scale, so a handful of real points pins it precisely. The
// acceptance shape of the fast path is depth 16, arity 4.

const Setup& GetShapedSetup(int depth, int arity) {
  static std::map<std::pair<int, int>, Setup>* cache =
      new std::map<std::pair<int, int>, Setup>();
  auto key = std::make_pair(depth, arity);
  auto it = cache->find(key);
  if (it == cache->end()) {
    std::vector<Point> points;
    std::vector<LeafPath> paths;
    for (int i = 0; i < 2; ++i) {
      points.push_back({static_cast<double>(i), 0.0});
      paths.push_back(LeafPath(static_cast<size_t>(depth),
                               static_cast<char16_t>(i)));
    }
    auto tree = CompleteHst::FromParts(depth, arity, 1.0, std::move(points),
                                       std::move(paths));
    auto mech = HstMechanism::Build(*tree, 0.05);
    it = cache
             ->emplace(key, Setup{std::move(tree).MoveValueUnsafe(),
                                  std::move(mech).MoveValueUnsafe()})
             .first;
  }
  return it->second;
}

// Path-domain walk: the pre-existing serve-path cost (heap-allocated
// LeafPath out, one Bernoulli per level + one UniformInt per digit).
void BM_WalkObfuscatePath(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  Rng rng(1);
  const LeafPath& x = setup.tree.leaf_of_point(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.Obfuscate(x, &rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
}
BENCHMARK(BM_WalkObfuscatePath)->Args({16, 4})->Args({32, 2})->Args({10, 8});

// Code-domain walk: same draw sequence, packed output (path-vs-code row).
void BM_WalkObfuscateCode(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  Rng rng(1);
  const LeafCode x =
      setup.mechanism.codec()->Pack(setup.tree.leaf_of_point(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.ObfuscateCodeWalk(x, &rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
}
BENCHMARK(BM_WalkObfuscateCode)->Args({16, 4})->Args({32, 2})->Args({10, 8});

// Inverse-CDF fast path (walk-vs-inverse-CDF row), with the allocation
// audit: 10k samples outside the timed loop must not allocate once.
void BM_InverseCdfObfuscateCode(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  Rng rng(1);
  const LeafCode x =
      setup.mechanism.codec()->Pack(setup.tree.leaf_of_point(0));

  const size_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    benchmark::DoNotOptimize(setup.mechanism.ObfuscateCode(x, &rng));
  }
  const size_t audit_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  if (audit_allocs != 0) {
    state.SkipWithError("ObfuscateCode allocated on the sampling path");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.ObfuscateCode(x, &rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
  state.counters["audit_allocs_per_10k"] = static_cast<double>(audit_allocs);
}
BENCHMARK(BM_InverseCdfObfuscateCode)
    ->Args({16, 4})
    ->Args({32, 2})
    ->Args({10, 8});

// Timing-oblivious sampler (oblivious-vs-inverse-CDF row): constant-shape
// schedule — depth + 2 rng words per sample no matter the truth or the
// drawn level — with the same zero-allocation audit as the inverse-CDF
// row: 10k samples outside the timed loop must never touch the heap.
void BM_ObliviousObfuscateCode(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  Rng rng(1);
  const LeafCode x =
      setup.mechanism.codec()->Pack(setup.tree.leaf_of_point(0));

  const size_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    benchmark::DoNotOptimize(setup.mechanism.ObfuscateCodeOblivious(x, &rng));
  }
  const size_t audit_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  if (audit_allocs != 0) {
    state.SkipWithError("ObfuscateCodeOblivious allocated on the sampling path");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.mechanism.ObfuscateCodeOblivious(x, &rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = setup.tree.depth();
  state.counters["arity"] = setup.tree.arity();
  state.counters["audit_allocs_per_10k"] = static_cast<double>(audit_allocs);
}
BENCHMARK(BM_ObliviousObfuscateCode)
    ->Args({16, 4})
    ->Args({32, 2})
    ->Args({10, 8});

// --------------------------- index churn rows ------------------------------
// Steady-state insert/remove churn of the availability index at the fast
// path's shape: one worker leaves a leaf, another arrives elsewhere —
// exactly what every assignment + re-registration costs the trie. The
// packed row reads digits straight out of the code; the path row is the
// LeafPath entry point (packs at the boundary).

constexpr int kChurnItems = 4096;

std::vector<LeafPath> ChurnLeaves(const Setup& setup, int count) {
  Rng rng(42);
  std::vector<LeafPath> leaves;
  leaves.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    leaves.push_back(
        RandomLeafPath(setup.tree.depth(), setup.tree.arity(), &rng));
  }
  return leaves;
}

void BM_IndexChurnPath(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(16, 4);
  const std::vector<LeafPath> leaves = ChurnLeaves(setup, 2 * kChurnItems);
  HstAvailabilityIndex index(setup.tree.depth(), setup.tree.arity());
  for (int i = 0; i < kChurnItems; ++i) {
    index.Insert(leaves[static_cast<size_t>(i)], i);
  }
  // Each pass moves every item between layout A (leaves[i]) and layout B
  // (leaves[i + N]); alternating passes keep the books consistent forever.
  size_t cursor = 0;
  for (auto _ : state) {
    const size_t i = cursor % kChurnItems;
    const bool to_b = (cursor / kChurnItems) % 2 == 0;
    index.Remove(leaves[to_b ? i : i + kChurnItems], static_cast<int>(i));
    index.Insert(leaves[to_b ? i + kChurnItems : i], static_cast<int>(i));
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations() * 2);  // one remove + one insert
  state.counters["items"] = kChurnItems;
}
BENCHMARK(BM_IndexChurnPath);

void BM_IndexChurnCode(benchmark::State& state) {
  const Setup& setup = GetShapedSetup(16, 4);
  const std::vector<LeafPath> leaves = ChurnLeaves(setup, 2 * kChurnItems);
  HstAvailabilityIndex index(setup.tree.depth(), setup.tree.arity());
  std::vector<LeafCode> codes;
  codes.reserve(leaves.size());
  for (const LeafPath& leaf : leaves) codes.push_back(index.codec()->Pack(leaf));
  for (int i = 0; i < kChurnItems; ++i) {
    index.Insert(codes[static_cast<size_t>(i)], i);
  }
  size_t cursor = 0;
  for (auto _ : state) {
    const size_t i = cursor % kChurnItems;
    const bool to_b = (cursor / kChurnItems) % 2 == 0;
    index.Remove(codes[to_b ? i : i + kChurnItems], static_cast<int>(i));
    index.Insert(codes[to_b ? i + kChurnItems : i], static_cast<int>(i));
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["items"] = kChurnItems;
}
BENCHMARK(BM_IndexChurnCode);

// Baseline: planar Laplace sampling (Lambert W based inverse CDF).
void BM_PlanarLaplace(benchmark::State& state) {
  PlanarLaplaceMechanism mechanism(0.6);
  Rng rng(3);
  Point p{100, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Obfuscate(p, &rng));
  }
}
BENCHMARK(BM_PlanarLaplace);

// Client-side mapping: nearest predefined point via the k-d tree.
void BM_MapToNearestLeaf(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    Point p{rng.Uniform(0, 200), rng.Uniform(0, 200)};
    benchmark::DoNotOptimize(setup.tree.MapToNearestLeaf(p));
  }
}
BENCHMARK(BM_MapToNearestLeaf)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("micro_mechanism");
