// Drop-in replacement for BENCHMARK_MAIN() that makes every micro bench
// emit a machine-readable BENCH_<name>.json next to its console output
// (google-benchmark's JSON format), so CI can archive the perf trajectory.
// Any explicit --benchmark_out/--benchmark_format flags win over the
// defaults.

#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace tbf {
namespace bench {

inline int RunBenchmarksWithJsonDefault(int argc, char** argv,
                                        const char* bench_name) {
  std::vector<std::string> args(argv, argv + argc);
  bool has_out = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(std::string("--benchmark_out=BENCH_") + bench_name + ".json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> raw;
  raw.reserve(args.size());
  for (std::string& arg : args) raw.push_back(arg.data());
  int raw_argc = static_cast<int>(raw.size());
  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace tbf

#define TBF_BENCHMARK_JSON_MAIN(bench_name)                                  \
  int main(int argc, char** argv) {                                          \
    return ::tbf::bench::RunBenchmarksWithJsonDefault(argc, argv, bench_name); \
  }
