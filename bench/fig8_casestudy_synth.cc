// Figure 8 (a, b, e, f): the matching-size case study on synthetic data —
// Prob (To et al.) vs TBF, varying |W| and eps. Reachable radii U[10, 20].
//
//   --sweep=W|eps|all

#include <functional>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

namespace {

CaseStudyInstance MakeInstance(int workers, const BenchOptions& options,
                               uint64_t salt) {
  SyntheticCaseStudyConfig config;
  config.base.num_tasks = Scaled(3000, options);
  config.base.num_workers = workers;
  config.base.seed = options.seed + salt;
  return Unwrap(GenerateSyntheticCaseStudy(config), "generate case study");
}

void AddBoth(FigureSeries* series, const std::string& x,
             const CaseStudyInstance& instance, double eps,
             const BenchOptions& options) {
  for (CaseStudyAlgorithm algorithm :
       {CaseStudyAlgorithm::kProb, CaseStudyAlgorithm::kTbf}) {
    CaseStudyConfig config;
    config.pipeline.epsilon = eps;
    config.pipeline.grid_side = options.grid_side;
    config.pipeline.seed = options.seed;
    AveragedMetrics metrics = Unwrap(
        RunRepeatedCaseStudy(algorithm, instance, config, options.repeats),
        "run case study");
    series->Add(x, metrics);
  }
}

FigureSeries::PanelSelection CaseStudyPanels() {
  FigureSeries::PanelSelection panels;
  panels.total_distance = false;
  panels.memory_mb = false;
  panels.matching_size = true;
  panels.match_seconds = true;
  return panels;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Figure 8a/8e + 8b/8f: case study (synthetic)");
  const std::string sweep = args.GetString("sweep", "all");

  if (sweep == "W" || sweep == "all") {
    FigureSeries series("Fig 8a/8e — matching size, varying |W|", "|W|");
    for (int paper_w : {3000, 4000, 5000, 6000, 7000}) {
      int workers = Scaled(paper_w, options);
      CaseStudyInstance instance =
          MakeInstance(workers, options, static_cast<uint64_t>(paper_w));
      AddBoth(&series, AsciiTable::Num(workers), instance, 0.2, options);
    }
    series.PrintTables(CaseStudyPanels());
    WriteSeries(series, options, "fig8_synth_W.csv");
    std::cout << "\n";
  }

  if (sweep == "eps" || sweep == "all") {
    FigureSeries series("Fig 8b/8f — matching size, varying eps", "eps");
    CaseStudyInstance instance = MakeInstance(Scaled(5000, options), options, 1);
    for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      AddBoth(&series, AsciiTable::Num(eps), instance, eps, options);
    }
    series.PrintTables(CaseStudyPanels());
    WriteSeries(series, options, "fig8_synth_eps.csv");
  }
  return 0;
}
