// Figure 7 (b, f, j): scalability — |T| = |W| grows from 2x10^4 to 10^5
// (paper scale; quick mode runs a downscaled ladder with the same shape).

#include "bench/bench_common.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args, /*default_factor=*/0.1);
  PrintModeBanner(options, "Figure 7b/7f/7j: scalability");

  FigureSeries series("Fig 7b/7f/7j — scalability |T| = |W|", "|T|,|W|");
  for (int paper_size : {20000, 40000, 60000, 80000, 100000}) {
    int size = Scaled(paper_size, options);
    SyntheticConfig config;
    config.num_tasks = size;
    config.num_workers = size;
    config.seed = options.seed + static_cast<uint64_t>(size);
    OnlineInstance instance =
        Unwrap(GenerateSynthetic(config), "generate synthetic");
    for (Algorithm algorithm :
         {Algorithm::kLapGr, Algorithm::kLapHg, Algorithm::kTbf}) {
      PipelineConfig pipeline;
      pipeline.grid_side = options.grid_side;
      pipeline.seed = options.seed;
      // The paper's complexity discussion assumes the scan engines; pass
      // --fast_engines to see the indexed versions at the same sizes.
      if (args.GetBool("fast_engines", false)) {
        pipeline.greedy_engine = GreedyEngine::kKdTree;
        pipeline.hst_engine = HstEngine::kIndex;
      }
      AveragedMetrics metrics =
          Unwrap(RunRepeated(algorithm, instance, pipeline, options.repeats),
                 "run pipeline");
      series.Add(AsciiTable::Num(size), metrics);
    }
  }
  series.PrintTables();
  WriteSeries(series, options, "fig7_scalability.csv");
  return 0;
}
