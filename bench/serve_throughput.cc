// End-to-end serving throughput (google-benchmark): replays a timestamped
// synthetic worker/task stream through the sharded serving engine and
// reports events/sec (items_per_second in the JSON). One iteration = one
// full replay: per-epoch batched obfuscation + dispatch into a fresh
// ShardedTbfServer.
//
// The shards axis is the acceptance gate of the sharded engine: 1 shard
// runs the exact sequential baseline (threads=1, event-order dispatch —
// what a single TbfServer does), K > 1 shards run K dispatch lanes over a
// K-wide pool. Obfuscation and dispatch both parallelize, so on a machine
// with >= 4 cores the 8-shard row should clear 2x the 1-shard row at 100k
// workers; on a single-core machine the rows collapse to ~1x (the engine
// adds locking but no parallel work can happen). Emits
// BENCH_serve_throughput.json (see json_main.h).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <string>
#include <utility>

#include "bench/json_main.h"
#include "core/tbf.h"
#include "geo/grid.h"
#include "hst/snapshot.h"
#include "serve/replay.h"
#include "workload/synthetic.h"

namespace tbf {
namespace {

struct ServeWorkload {
  TbfFramework framework;
  const EventTrace* trace;  // stable address in GetTrace's never-freed cache
};

// Framework + trace are shared across iterations and shard counts: the
// bench measures serving, not setup. The sampler axis (0 = walk, 1 =
// inverse-CDF, 2 = timing-oblivious) rebuilds only the framework; the
// trace is generated once per worker count and shared by reference
// across sampler entries.
const EventTrace& GetTrace(int workers) {
  static std::map<int, EventTrace>* cache = new std::map<int, EventTrace>;
  auto it = cache->find(workers);
  if (it != cache->end()) return it->second;

  SyntheticEventConfig config;
  config.base.num_workers = workers;
  config.base.num_tasks = workers / 2;
  config.base.seed = 17;
  config.horizon_seconds = 600.0;
  config.departure_probability = 0.05;
  auto trace = GenerateEventTrace(config);
  return cache->emplace(workers, std::move(trace).MoveValueUnsafe())
      .first->second;
}

const ServeWorkload& GetWorkload(int workers, SamplerKind sampler) {
  static std::map<std::pair<int, int>, ServeWorkload>* cache =
      new std::map<std::pair<int, int>, ServeWorkload>;
  const auto key = std::make_pair(workers, static_cast<int>(sampler));
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  Rng rng(3);
  auto grid = UniformGridPoints(BBox::Square(200), 32);
  TbfOptions options;
  options.epsilon = 0.6;
  options.sampler = sampler;
  auto framework = TbfFramework::Build(std::move(grid).MoveValueUnsafe(),
                                       EuclideanMetric(), &rng, options);

  auto inserted = cache->emplace(
      key, ServeWorkload{std::move(framework).MoveValueUnsafe(),
                         &GetTrace(workers)});
  return inserted.first->second;
}

void BM_ServeReplay(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const SamplerKind sampler = state.range(2) == 0   ? SamplerKind::kWalk
                              : state.range(2) == 1 ? SamplerKind::kInverseCdf
                                                    : SamplerKind::kOblivious;
  const ServeWorkload& workload = GetWorkload(workers, sampler);

  ReplayOptions options;
  options.epoch_seconds = 30.0;
  options.num_shards = shards;
  options.threads = shards;  // one lane per shard
  options.parallel_dispatch = shards > 1;
  size_t assigned = 0;
  size_t unassigned = 0;
  size_t denied = 0;
  size_t epochs = 0;
  double mean_tree_distance = 0.0;
  for (auto _ : state) {
    auto report = RunEventReplay(workload.framework, *workload.trace, options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    assigned = report->assigned;
    unassigned = report->unassigned;
    denied = report->denied;
    epochs = report->epochs;
    double distance_sum = 0.0;
    size_t distance_count = 0;
    for (const TaskOutcome& outcome : report->task_outcomes) {
      if (outcome.worker) {
        distance_sum += outcome.reported_tree_distance;
        ++distance_count;
      }
    }
    mean_tree_distance =
        distance_count > 0 ? distance_sum / static_cast<double>(distance_count)
                           : 0.0;
    benchmark::DoNotOptimize(report->events_per_second);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.trace->events.size()));
  state.counters["shards"] = shards;
  state.counters["assigned"] = static_cast<double>(assigned);
  state.counters["unassigned"] = static_cast<double>(unassigned);
  state.counters["denied"] = static_cast<double>(denied);
  // Mean reported tree distance over assigned tasks: the quality axis —
  // it must not move when shards/sampler/metrics knobs change.
  state.counters["mean_tree_distance"] = mean_tree_distance;
  state.counters["epochs"] = static_cast<double>(epochs);
  // Comparison fields: the serve path dispatches on packed LeafCodes end to
  // end (code_native = 1 distinguishes this JSON from pre-fast-path
  // artifacts); sampler 0 = Bernoulli walk, 1 = inverse-CDF single draw,
  // 2 = timing-oblivious constant-shape schedule.
  state.counters["code_native"] =
      workload.framework.codec() != nullptr ? 1.0 : 0.0;
  state.counters["sampler"] = static_cast<double>(state.range(2));
}

// Republish under load: the same replay with three live tree swaps
// (bit-identical snapshot copies) spread across the run. The delta
// against the matching BM_ServeReplay row is the whole cost of
// zero-downtime republication — re-keying every live worker and
// rebuilding the shard indexes three times, with zero dropped events
// (assigned/unassigned must equal the swap-free row).
void BM_ServeReplayWithRepublish(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const ServeWorkload& workload = GetWorkload(workers, SamplerKind::kWalk);

  auto copy = ParseHstSnapshot(SerializeHstSnapshot(workload.framework.tree()));
  if (!copy.ok()) {
    state.SkipWithError("snapshot round-trip failed");
    return;
  }
  auto tree = std::make_shared<const CompleteHst>(
      std::move(copy).MoveValueUnsafe());

  ReplayOptions options;
  options.epoch_seconds = 30.0;
  options.num_shards = shards;
  options.threads = shards;
  options.parallel_dispatch = shards > 1;
  options.republishes.push_back({5, tree});
  options.republishes.push_back({10, tree});
  options.republishes.push_back({15, tree});
  size_t assigned = 0;
  size_t unassigned = 0;
  uint64_t republishes = 0;
  for (auto _ : state) {
    auto report = RunEventReplay(workload.framework, *workload.trace, options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    assigned = report->assigned;
    unassigned = report->unassigned;
    republishes = report->republishes;
    benchmark::DoNotOptimize(report->events_per_second);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.trace->events.size()));
  state.counters["shards"] = shards;
  state.counters["assigned"] = static_cast<double>(assigned);
  state.counters["unassigned"] = static_cast<double>(unassigned);
  state.counters["republishes"] = static_cast<double>(republishes);
}

// Durability under load: the same sequential replay with the write-ahead
// journal off / group-commit / every-record. The wal_policy counter keys
// the rows; every row (including the WAL-off reference) checkpoints at
// the same cadence, so the events/sec delta against wal_policy = 0 is
// the whole journaling overhead. Group commit (the shipped default) must
// stay within 15% of the WAL-off row at the 100k gate — every-record
// buys per-record power-loss durability and is expected to cost real
// throughput on fsync-bound disks, so it only runs at the 10k row.
void BM_ServeReplayDurable(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int policy = static_cast<int>(state.range(1));
  const ServeWorkload& workload = GetWorkload(workers, SamplerKind::kWalk);

  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/tbf_bench_wal";
  ReplayOptions options;
  options.epoch_seconds = 30.0;
  options.num_shards = 1;  // the journal is an ordered log: sequential
  options.checkpoint_every_epochs = 4;
  if (policy > 0) {
    options.durable_dir = dir;
    options.wal_fsync = policy == 1 ? WalFsyncPolicy::GroupCommit()
                                    : WalFsyncPolicy::EveryRecord();
  } else {
    // The WAL-off reference writes the legacy single-file checkpoint at
    // the same cadence, so every row pays the same snapshot cost and the
    // delta against it is the journal alone — exactly the overhead the
    // group-commit gate bounds.
    options.checkpoint_path = dir + ".legacy.ckpt";
  }
  size_t assigned = 0;
  uint64_t checkpoints = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);  // each iteration is a fresh run
    std::filesystem::remove(dir + ".legacy.ckpt");
    state.ResumeTiming();
    auto report = RunEventReplay(workload.framework, *workload.trace, options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    assigned = report->assigned;
    checkpoints = report->checkpoints_written;
    benchmark::DoNotOptimize(report->events_per_second);
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove(dir + ".legacy.ckpt");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.trace->events.size()));
  // 0 = WAL off (legacy checkpoint only), 1 = group commit (default
  // policy), 2 = every-record.
  state.counters["wal_policy"] = policy;
  state.counters["assigned"] = static_cast<double>(assigned);
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
}

BENCHMARK(BM_ServeReplayDurable)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({100000, 0})
    ->Args({100000, 1});

BENCHMARK(BM_ServeReplayWithRepublish)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({10000, 1})
    ->Args({100000, 4});

BENCHMARK(BM_ServeReplay)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // items_per_second from wall clock, not main-thread CPU
    ->Args({10000, 1, 0})
    ->Args({10000, 8, 0})
    ->Args({100000, 1, 0})
    ->Args({100000, 2, 0})
    ->Args({100000, 4, 0})
    ->Args({100000, 8, 0})
    // Walk vs inverse-CDF vs oblivious, end to end at the 100k gate.
    ->Args({100000, 1, 1})
    ->Args({100000, 8, 1})
    ->Args({100000, 1, 2})
    ->Args({100000, 8, 2});

}  // namespace
}  // namespace tbf

TBF_BENCHMARK_JSON_MAIN("serve_throughput");
