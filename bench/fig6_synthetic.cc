// Figure 6 (a-l): synthetic data, varying |T|, |W|, mu, sigma — total
// distance, running time and memory for Lap-GR, Lap-HG, TBF.
//
//   --sweep=T|W|mu|sigma|all   which column of Fig. 6 to run (default all)
// plus the common flags in bench_common.h.

#include <functional>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

using namespace tbf;
using namespace tbf::bench;

namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kLapGr, Algorithm::kLapHg,
                                     Algorithm::kTbf};

SyntheticConfig DefaultConfig(const BenchOptions& options) {
  SyntheticConfig config;
  config.num_tasks = Scaled(3000, options);
  config.num_workers = Scaled(5000, options);
  return config;
}

void RunSweep(const std::string& figure, const std::string& x_name,
              const std::vector<double>& x_values,
              const std::function<void(SyntheticConfig*, double)>& apply,
              const BenchOptions& options, const std::string& csv_name) {
  FigureSeries series(figure, x_name);
  for (double x : x_values) {
    SyntheticConfig config = DefaultConfig(options);
    apply(&config, x);
    config.seed = options.seed + static_cast<uint64_t>(x * 1000);
    OnlineInstance instance =
        Unwrap(GenerateSynthetic(config), "generate synthetic");
    for (Algorithm algorithm : kAlgorithms) {
      PipelineConfig pipeline;
      pipeline.grid_side = options.grid_side;
      pipeline.seed = options.seed;
      AveragedMetrics metrics =
          Unwrap(RunRepeated(algorithm, instance, pipeline, options.repeats),
                 "run pipeline");
      series.Add(AsciiTable::Num(x), metrics);
    }
  }
  series.PrintTables();
  WriteSeries(series, options, csv_name);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchOptions options = ParseBenchOptions(args);
  PrintModeBanner(options, "Figure 6: synthetic sweeps");
  const std::string sweep = args.GetString("sweep", "all");

  if (sweep == "T" || sweep == "all") {
    std::vector<double> values;
    for (int t : {1000, 2000, 3000, 4000, 5000}) {
      values.push_back(Scaled(t, options));
    }
    RunSweep("Fig 6a/6e/6i — varying |T|", "|T|", values,
             [](SyntheticConfig* c, double x) {
               c->num_tasks = static_cast<int>(x);
             },
             options, "fig6_T.csv");
  }
  if (sweep == "W" || sweep == "all") {
    std::vector<double> values;
    for (int w : {3000, 4000, 5000, 6000, 7000}) {
      values.push_back(Scaled(w, options));
    }
    RunSweep("Fig 6b/6f/6j — varying |W|", "|W|", values,
             [](SyntheticConfig* c, double x) {
               c->num_workers = static_cast<int>(x);
             },
             options, "fig6_W.csv");
  }
  if (sweep == "mu" || sweep == "all") {
    RunSweep("Fig 6c/6g/6k — varying mu", "mu", {50, 75, 100, 125, 150},
             [](SyntheticConfig* c, double x) { c->mu = x; }, options,
             "fig6_mu.csv");
  }
  if (sweep == "sigma" || sweep == "all") {
    RunSweep("Fig 6d/6h/6l — varying sigma", "sigma", {10, 15, 20, 25, 30},
             [](SyntheticConfig* c, double x) { c->sigma = x; }, options,
             "fig6_sigma.csv");
  }
  return 0;
}
